/**
 * @file
 * SKU-portfolio analysis (design goal D2, §II): "each new SKU adds
 * operational complexity and cost ... offering numerous server options
 * can reduce demand multiplexing ... adding many server options may
 * require larger buffers. Thus, cloud providers must limit how many SKU
 * types they deploy."
 *
 * This component answers the resulting design question directly: given
 * a menu of GreenSKU designs, how many SKU types should a provider
 * deploy? Each additional type serves its demand slice with a
 * better-matched (lower-carbon) SKU, but fragments demand across more
 * independent streams, inflating the growth buffer by ~sqrt(k)
 * (cluster/demand.h). The optimum is where marginal matching gains stop
 * paying for marginal buffer carbon.
 */
#pragma once

#include <string>
#include <vector>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "cluster/demand.h"

namespace gsku::gsf {

/** One SKU type in a candidate portfolio with its demand share. */
struct PortfolioSlice
{
    carbon::ServerSku sku;

    /** Fraction of compute demand (in baseline-core-equivalents) this
     *  SKU serves, already inflated by scaling factors. */
    double demand_share = 0.0;

    /** Mean scaling factor of the workloads routed to this SKU. */
    double mean_scaling = 1.0;
};

/** Evaluation of one candidate portfolio. */
struct PortfolioResult
{
    std::string label;
    int sku_types = 0;              ///< Baseline counts as one type.
    CarbonMass demand_emissions;    ///< Serving the demand itself.
    CarbonMass buffer_emissions;    ///< Growth buffers (fragmented).
    double savings = 0.0;           ///< vs the baseline-only portfolio.

    CarbonMass total() const { return demand_emissions + buffer_emissions; }
};

/** Portfolio evaluator. */
class PortfolioAnalysis
{
  public:
    PortfolioAnalysis(carbon::ModelParams carbon_params,
                      cluster::DemandParams demand_params,
                      double total_demand_cores = 50000.0);

    /**
     * Evaluate a portfolio at carbon intensity @p ci. Slices' demand
     * shares must sum to at most 1; the remainder stays on
     * @p baseline. Buffers are sized per SKU type (baseline included)
     * with the fragmentation-adjusted demand model and are built from
     * the slice's own SKU.
     */
    PortfolioResult evaluate(const carbon::ServerSku &baseline,
                             const std::vector<PortfolioSlice> &slices,
                             CarbonIntensity ci,
                             const std::string &label) const;

    /**
     * Convenience: evaluate deploying the first k entries of @p menu
     * (k = 0 .. menu.size()), splitting the adoptable demand share
     * @p adoptable equally among the deployed GreenSKU types, and
     * return all results (k = 0 first — the baseline-only reference).
     */
    std::vector<PortfolioResult>
    sweepPortfolioSizes(const carbon::ServerSku &baseline,
                        const std::vector<PortfolioSlice> &menu,
                        CarbonIntensity ci) const;

  private:
    carbon::ModelParams carbon_params_;
    cluster::DemandParams demand_params_;
    double total_demand_cores_;

    /** Emissions of serving `cores` baseline-core-equivalents on `sku`
     *  at scaling `sf`. */
    CarbonMass serveEmissions(const carbon::ServerSku &sku, double cores,
                              double sf, CarbonIntensity ci) const;
};

} // namespace gsku::gsf
