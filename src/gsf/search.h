/**
 * @file
 * Seeded simulated-annealing search over SKU configurations — the
 * "future search framework [that] could ... repeatedly run GSF to
 * evaluate emissions" §VIII anticipates. Where DesignSpaceExplorer
 * exhaustively enumerates a DesignRange, this engine walks it: a typed
 * move set (±DDR5 DIMM, ±CXL DDR4 DIMM, ±new SSD, ±reused SSD), a
 * geometric cooling schedule, and independent restarts, each finished
 * with a deterministic steepest-ascent quench so every restart lands on
 * a local optimum of total carbon savings.
 *
 * Determinism contract (tests/gsf/search_test.cc and
 * parallel_parity_test.cc):
 *
 *  - Every restart draws from its own pre-forked Rng stream (forked
 *    from the master seed in restart order before any work starts), so
 *    the seed fully determines every trajectory.
 *  - Restarts run on the worker pool via parallelMap and are merged in
 *    restart-index order, so the SearchResult is byte-identical at any
 *    thread count.
 *  - Candidate evaluations flow through the persistent eval cache
 *    (record kind `search_eval`): results are exact bit patterns, so a
 *    warm run replays the cold trajectory move for move, and the
 *    captured ledger lines keep cold and warm ledgers byte-identical.
 *
 * Observability: each annealing/quench move is one `search.move`
 * ledger fact, one `search.moves` counter tick, and one
 * profileWork("sa_moves") work unit (docs/observability.md).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "gsf/design_space.h"
#include "gsf/pareto.h"
#include "gsf/tco.h"
#include "perf/model.h"

namespace gsku::gsf {

/** One cached candidate evaluation: the carbon model's savings row
 *  plus the three Pareto objectives. */
struct SearchEval
{
    carbon::SavingsRow savings;
    SearchObjectives objectives;
};

/** Annealing knobs. Defaults are tuned so the default DesignRange's
 *  exhaustive optimum is found (bench_search pins the agreement). */
struct SearchOptions
{
    std::uint64_t seed = 1;

    /** Independent restarts; each gets a pre-forked Rng stream. */
    int restarts = 6;

    /** Annealing steps per restart (the quench adds more). */
    int steps = 400;

    /** Initial temperature in total-savings fraction units. */
    double initial_temperature = 0.05;

    /** Geometric cooling: temperature *= cooling after every step. */
    double cooling = 0.985;

    /** The move lattice (also the restart-start sample space). */
    DesignRange range;
};

/** Aggregate move accounting across all restarts. */
struct SearchStats
{
    long moves = 0;         ///< Annealing + quench moves attempted.
    long accepted = 0;      ///< Moves taken (improving or Metropolis).
    long rejected = 0;      ///< Moves declined (bounds, infeasible, or
                            ///< Metropolis loss).
    long infeasible = 0;    ///< Rejections whose candidate violated the
                            ///< deployability constraints.
    long evaluations = 0;   ///< Distinct feasible candidates evaluated
                            ///< (per-restart memo collapses revisits).
};

/** What a search run returns. */
struct SearchResult
{
    /** False only when no restart ever reached a feasible design. */
    bool found = false;

    /** Highest-total-savings design seen (ties broken by name, the
     *  same order DesignSpaceExplorer::explore returns). */
    RankedDesign best;
    SearchObjectives best_objectives;

    /** Dominance-filtered frontier over every feasible design any
     *  restart evaluated. */
    ParetoArchive archive;

    SearchStats stats;
};

/**
 * The engine. Owns its models (carbon, TCO, perf) so one search sees
 * one consistent parameterization; all queries are const.
 */
class SkuSearch
{
  public:
    explicit SkuSearch(carbon::ModelParams carbon_params = {},
                       TcoParams tco_params = {},
                       perf::PerfConfig perf_config = {},
                       DesignConstraints constraints = {});

    /** Run the annealer against @p baseline. */
    SearchResult anneal(const carbon::ServerSku &baseline,
                        const SearchOptions &options = {}) const;

    /**
     * Evaluate one feasible candidate: savings row vs @p baseline,
     * per-core carbon, per-core TCO, and the worst-case SLO margin
     * across latency-reporting apps (the candidate's CXL backing is
     * the one perf-relevant attribute). Served from the persistent
     * eval cache (kind `search_eval`) when enabled.
     */
    SearchEval evaluate(const carbon::ServerSku &baseline,
                        const carbon::ServerSku &candidate) const;

    const carbon::CarbonModel &carbonModel() const { return model_; }
    const DesignConstraints &constraints() const { return constraints_; }

  private:
    /** Uncached evaluate(); runs entirely on the calling thread so a
     *  LedgerCapture sees every fact it emits. */
    SearchEval evaluateUncached(const carbon::ServerSku &baseline,
                                const carbon::ServerSku &candidate) const;

    carbon::ModelParams carbon_params_;
    TcoParams tco_params_;
    perf::PerfConfig perf_config_;
    DesignConstraints constraints_;
    carbon::CarbonModel model_;
    TcoModel tco_;
    perf::PerfModel perf_;
    DesignSpaceExplorer explorer_;
};

} // namespace gsku::gsf
