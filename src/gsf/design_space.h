/**
 * @file
 * Design-space exploration as a library (§VIII "Navigating component
 * search space"): the paper's authors "used parts of GSF to iterate
 * through hundreds of configurations" and anticipate "a future search
 * framework [that] could ... repeatedly run GSF to evaluate emissions".
 * This component is that loop: enumerate Bergamo-based candidates over
 * component ranges, filter by deployability constraints (the
 * compatibility/performance interactions §VIII names), and rank by the
 * carbon model.
 */
#pragma once

#include <optional>
#include <vector>

#include "carbon/model.h"
#include "carbon/sku.h"

namespace gsku::gsf {

/** Deployability constraints a candidate must satisfy. */
struct DesignConstraints
{
    /** Workload-driven memory:core bounds in GB/core (§VI found 8
     *  carbon-optimal; the baseline ships 9.6). */
    double min_mem_per_core = 7.0;
    double max_mem_per_core = 10.0;

    /** CXL-backed memory beyond this share risks adoption (Fig. 10's
     *  shaded region is 25%). */
    double max_cxl_fraction = 0.26;

    /** PCIe/CXL capacity: cards at 4 DIMMs each, drives at 4 lanes. */
    int max_cxl_cards = 4;
    int max_ssd_units = 16;

    /** Minimum storage the VM offerings need. */
    double min_storage_tb = 8.0;
};

/** Component count ranges to enumerate. */
struct DesignRange
{
    std::vector<int> ddr5_dimms = {6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
    std::vector<int> cxl_ddr4_dimms = {0, 4, 8, 12, 16};
    std::vector<int> new_ssds = {0, 1, 2, 3, 4, 5, 6};
    std::vector<int> reused_ssds = {0, 2, 4, 6, 8, 10, 12, 14};
};

/** One evaluated candidate. */
struct RankedDesign
{
    carbon::ServerSku sku;
    carbon::SavingsRow savings;
};

/**
 * The canonical ranking order explore() sorts by: total savings
 * descending, ties broken by SKU name ascending. Candidate names are
 * unique within a range, so this is a total order — without the name
 * tie-break, equal-savings candidates landed in whatever order
 * std::sort's implementation left them, making the ranked artifact
 * (and the eval-cache payload built from it) stdlib-dependent.
 */
bool rankedDesignLess(const RankedDesign &a, const RankedDesign &b);

/** The exploration driver. */
class DesignSpaceExplorer
{
  public:
    DesignSpaceExplorer(const carbon::CarbonModel &model,
                        DesignConstraints constraints = {});

    /**
     * Build a Bergamo candidate (64 GB DDR5 DIMMs, 32 GB reused DDR4,
     * 4 TB new SSDs, 1 TB reused SSDs); std::nullopt when it violates
     * the constraints.
     */
    std::optional<carbon::ServerSku>
    buildCandidate(int ddr5_dimms, int cxl_ddr4_dimms, int new_ssds,
                   int reused_ssds) const;

    /**
     * Enumerate the range, evaluate deployable candidates against
     * @p baseline, and return them sorted by total savings descending.
     * @p considered (optional out) counts all enumerated combinations.
     * Served from the persistent evaluation cache when enabled
     * (gsf/eval_cache.h), keyed on the baseline, the range, the
     * constraints, and the carbon-model parameters.
     */
    std::vector<RankedDesign>
    explore(const carbon::ServerSku &baseline,
            const DesignRange &range = {},
            long *considered = nullptr) const;

    /**
     * 1-based rank @p savings would hold in @p designs (sorted as
     * explore() returns them), under *competition ranking*: 1 + the
     * number of designs with strictly greater total savings, so ties
     * share the best rank ("1224" ranking) and a design better than
     * every entry ranks 1. Requires finite savings on both sides —
     * a NaN would silently rank 1.
     */
    static std::size_t rankOf(const std::vector<RankedDesign> &designs,
                              const carbon::SavingsRow &savings);

  private:
    /** The actual enumeration; explore() wraps this in the eval-cache
     *  fetch/compute/store cycle. */
    std::vector<RankedDesign>
    exploreUncached(const carbon::ServerSku &baseline,
                    const DesignRange &range, long *considered) const;

    const carbon::CarbonModel &model_;
    DesignConstraints constraints_;
};

} // namespace gsku::gsf
