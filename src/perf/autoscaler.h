/**
 * @file
 * Post-deployment runtime auto-scaling (§VIII "Scheduling real-time
 * applications"): the paper points to auto-scalers [98][100] as the way
 * GreenSKUs keep meeting SLOs across load changes after deployment.
 *
 * This component simulates a day of diurnal load against a VM whose
 * core count an auto-scaler adjusts each interval to the smallest size
 * meeting the SLO, and reports the core-hours (and hence operational
 * carbon) saved relative to statically provisioning for peak.
 */
#pragma once

#include <vector>

#include "perf/app.h"
#include "perf/cpu.h"
#include "perf/model.h"

namespace gsku::perf {

/** A sinusoidal day/night load pattern. */
struct DiurnalLoad
{
    double peak_qps = 1000.0;

    /** Trough load as a fraction of peak (clouds see 0.3-0.6). */
    double trough_fraction = 0.4;

    /** Hour of day (0-24) at which load peaks. */
    double peak_hour = 14.0;

    /** Load at an hour of day. */
    double qpsAt(double hour) const;
};

/** One interval of the simulated schedule. */
struct ScaleInterval
{
    double hour = 0.0;
    double qps = 0.0;
    int cores = 0;
    double p95_ms = 0.0;
};

/** Outcome of a simulated day. */
struct AutoScaleResult
{
    int static_cores = 0;           ///< Peak-provisioned VM size.
    double static_core_hours = 0.0;
    double scaled_core_hours = 0.0;
    std::vector<ScaleInterval> schedule;

    /** Fraction of core-hours (and operational carbon) saved. */
    double coreHoursSaved() const;
};

/** The auto-scaler simulator. */
class AutoScaler
{
  public:
    struct Config
    {
        /** Candidate VM sizes, smallest to largest. */
        std::vector<int> core_options = {2, 4, 6, 8, 10, 12, 16, 20, 24};

        /** Scheduling interval in hours. */
        double interval_h = 1.0;

        /** Latency headroom on the SLO when picking a size (scaling
         *  reactively needs slack for the next interval's growth). */
        double slo_headroom = 0.9;
    };

    explicit AutoScaler(const PerfModel &model);
    AutoScaler(const PerfModel &model, Config config);

    /**
     * Smallest candidate size meeting @p slo at @p qps on @p cpu
     * (with the configured headroom); the largest candidate when none
     * does.
     */
    int coresFor(const AppProfile &app, const CpuSpec &cpu, double qps,
                 const SloSpec &slo) const;

    /**
     * Simulate one day of @p load with the SLO derived from the Gen3
     * baseline (the deployment contract), auto-scaling on @p cpu.
     */
    AutoScaleResult simulateDay(const AppProfile &app, const CpuSpec &cpu,
                                const DiurnalLoad &load) const;

  private:
    const PerfModel &model_;
    Config config_;
};

} // namespace gsku::perf
