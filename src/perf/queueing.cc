#include "perf/queueing.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/profile.h"

namespace gsku::perf {

double
erlangC(int servers, double offered_load)
{
    // One work unit per Erlang-C evaluation: the queueing model's
    // cost driver for the profile (obs/profile.h).
    obs::profileWork("erlang.eval");
    GSKU_REQUIRE(servers >= 1, "erlangC needs at least one server");
    GSKU_REQUIRE(offered_load >= 0.0, "offered load must be non-negative");
    GSKU_REQUIRE(offered_load < static_cast<double>(servers),
                 "erlangC requires a stable queue (a < c)");
    if (offered_load == 0.0) {
        return 0.0;
    }

    // Numerically stable recurrence on the inverse Erlang-B:
    //   1/B(0,a) = 1;  1/B(k,a) = 1 + (k/a) / B(k-1,a)^-1 ... inverted.
    // We carry inv_b = 1/B(k, a).
    const double a = offered_load;
    const double c = static_cast<double>(servers);
    double inv_b = 1.0;
    for (int k = 1; k <= servers; ++k) {
        inv_b = 1.0 + inv_b * static_cast<double>(k) / a;
        if (inv_b > 1e280) {
            // The blocking probability B = 1/inv_b is below 1e-280 and
            // inv_b grows monotonically once k exceeds a, so letting
            // the recurrence run on would overflow inv_b to inf for
            // large server counts. C <= c*B/(c-a) is then <= ~1e-260
            // for any representable inputs: indistinguishable from an
            // unqueued system.
            return 0.0;
        }
    }
    const double b = 1.0 / inv_b;
    // Final combination, cancellation-free. The textbook form
    //   C = B / (1 - rho + rho*B),  rho = a/c
    // computes 1 - rho by *dividing first and subtracting after*, so as
    // rho -> 1 the subtraction returns rounding noise of magnitude
    // ulp(1) and the result loses ~|log10(1-rho)| digits. Multiply
    // through by c instead:
    //   C = c*B / ((c - a) + a*B)
    // where c - a is computed directly — exact by Sterbenz's lemma for
    // any a in [c/2, 2c], i.e. everywhere near saturation.
    return c * b / ((c - a) + a * b);
}

double
meanWaitMs(int servers, double mu, double lambda)
{
    GSKU_REQUIRE(mu > 0.0, "service rate must be positive");
    GSKU_REQUIRE(lambda >= 0.0, "arrival rate must be non-negative");
    const double capacity = static_cast<double>(servers) * mu;
    if (lambda >= capacity) {
        return std::numeric_limits<double>::infinity();
    }
    const double c_prob = erlangC(servers, lambda / mu);
    const double wait_s = c_prob / (capacity - lambda);
    return wait_s * 1e3;
}

double
peakThroughput(int servers, double mu)
{
    GSKU_REQUIRE(servers >= 1 && mu > 0.0, "invalid queue parameters");
    return static_cast<double>(servers) * mu;
}

namespace {

/**
 * P(T > t) for sojourn time T, with t in seconds.
 * theta = c*mu - lambda is the conditional-wait rate.
 */
double
sojournTail(double mu, double theta, double wait_prob, double t)
{
    const double no_wait = (1.0 - wait_prob) * std::exp(-mu * t);
    double with_wait;
    if (std::abs(theta - mu) < 1e-9 * mu) {
        // Hypoexponential degenerates to Erlang-2.
        with_wait = std::exp(-mu * t) * (1.0 + mu * t);
    } else {
        with_wait = (theta * std::exp(-mu * t) - mu * std::exp(-theta * t)) /
                    (theta - mu);
    }
    return no_wait + wait_prob * with_wait;
}

} // namespace

double
percentileSojournMs(int servers, double mu, double lambda, double p)
{
    GSKU_REQUIRE(servers >= 1, "need at least one server");
    GSKU_REQUIRE(mu > 0.0, "service rate must be positive");
    GSKU_REQUIRE(lambda >= 0.0, "arrival rate must be non-negative");
    GSKU_REQUIRE(p > 0.0 && p < 100.0, "percentile must be in (0, 100)");

    const double capacity = static_cast<double>(servers) * mu;
    if (lambda >= capacity) {
        return std::numeric_limits<double>::infinity();
    }
    const double wait_prob =
        lambda == 0.0 ? 0.0 : erlangC(servers, lambda / mu);
    const double theta = capacity - lambda;
    const double target = 1.0 - p / 100.0;

    // Bracket: the tail is below `target` somewhere before the sum of the
    // individual-stage percentiles; grow the bracket geometrically.
    double hi = (1.0 / mu + 1.0 / theta) * std::log(1.0 / target) + 1e-9;
    while (sojournTail(mu, theta, wait_prob, hi) > target) {
        hi *= 2.0;
    }
    double lo = 0.0;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (sojournTail(mu, theta, wait_prob, mid) > target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi) * 1e3;
}

} // namespace gsku::perf
