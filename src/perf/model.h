/**
 * @file
 * GSF's performance component (§IV-B), implemented as in §V: profile a
 * GreenSKU's relative performance per application and output a *scaling
 * factor* — how many GreenSKU cores per baseline-SKU core a VM needs to
 * meet the application's performance goals.
 *
 * Methodology mirrors the paper:
 *  - SLO: the 95th-percentile latency the baseline SKU achieves with an
 *    8-core VM at 90% of its peak saturation throughput (§VI).
 *  - Candidate GreenSKU VM sizes: 8, 10, 12 cores; the scaling factor is
 *    the smallest candidate meeting the SLO, divided by 8.
 *  - DevOps builds report throughput only; their scaling factor comes
 *    from matching aggregate build throughput (Table II).
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "carbon/sku.h"
#include "perf/app.h"
#include "perf/cpu.h"

namespace gsku::perf {

/** One point of a latency-vs-load curve (Figs. 7 and 8). */
struct LatencyPoint
{
    double qps = 0.0;
    double p95_ms = 0.0;    ///< +inf beyond saturation.
    double p99_ms = 0.0;
    double mean_ms = 0.0;
};

/** A full latency-vs-load curve for one (app, CPU, cores) config. */
struct LatencyCurve
{
    std::string label;
    double peak_qps = 0.0;
    std::vector<LatencyPoint> points;
};

/** The SLO derived from a baseline configuration. */
struct SloSpec
{
    double load_qps = 0.0;  ///< 90% of the baseline's peak throughput.
    double p95_ms = 0.0;    ///< Baseline p95 latency at that load.
};

/** Result of the scaling-factor search for one (app, baseline) pair. */
struct ScalingResult
{
    bool feasible = false;  ///< False renders as ">1.5" (Table III).
    int green_cores = 0;    ///< Cores used when feasible.
    double factor = 0.0;    ///< green_cores / 8 when feasible.

    /** Table III cell text: "1", "1.25", "1.5", or ">1.5". */
    std::string display() const;
};

/** Tunables of the performance methodology (defaults follow the paper). */
struct PerfConfig
{
    int baseline_vm_cores = 8;
    std::vector<int> green_core_options = {8, 10, 12};
    double tail_percentile = 95.0;
    double slo_load_fraction = 0.9;     ///< SLO set at 90% of peak.
    double low_load_fraction = 0.3;     ///< "Low" load (§VI).

    /** Measurement-noise tolerance when comparing tail latencies. */
    double tolerance = 0.02;

    /** Tolerance when matching aggregate build throughput (Table II
     *  build-time measurements are noisier than latency SLOs). */
    double throughput_tolerance = 0.05;

    /** Relative CXL latency penalty: (280 - 140) / 140 ns (§III). */
    double cxl_latency_penalty = 1.0;
};

/**
 * The performance model. Stateless; all queries are const.
 */
class PerfModel
{
  public:
    explicit PerfModel(PerfConfig config = PerfConfig{});

    const PerfConfig &config() const { return config_; }

    /**
     * Per-core performance of @p app on @p cpu relative to one Genoa
     * core (= 1.0), derived from the app's sensitivity exponents.
     */
    double perCorePerf(const AppProfile &app, const CpuSpec &cpu) const;

    /**
     * Mean per-request service time in ms on one core of @p cpu;
     * @p cxl_backed applies the CXL memory-latency inflation.
     */
    double serviceMs(const AppProfile &app, const CpuSpec &cpu,
                     bool cxl_backed = false) const;

    /** Per-core service rate in requests/second. */
    double serviceRate(const AppProfile &app, const CpuSpec &cpu,
                       bool cxl_backed = false) const;

    /** Saturation throughput of a VM with @p cores cores. */
    double peakQps(const AppProfile &app, const CpuSpec &cpu, int cores,
                   bool cxl_backed = false) const;

    /** p95 sojourn latency at @p qps; +inf beyond saturation. */
    double p95LatencyMs(const AppProfile &app, const CpuSpec &cpu,
                        int cores, double qps,
                        bool cxl_backed = false) const;

    /** SLO from the baseline generation's 8-core VM (§VI). */
    SloSpec slo(const AppProfile &app, const CpuSpec &baseline) const;

    /** Latency-vs-load curve with @p n_points up to saturation. */
    LatencyCurve curve(const AppProfile &app, const CpuSpec &cpu, int cores,
                       bool cxl_backed = false, int n_points = 25) const;

    /**
     * Scaling factor of the GreenSKU (Bergamo) VM relative to an 8-core
     * VM on @p baseline — a Table III cell. Latency apps must meet the
     * baseline-derived SLO; throughput-only apps must match aggregate
     * throughput within tolerance.
     */
    ScalingResult scalingFactor(const AppProfile &app,
                                const CpuSpec &baseline,
                                bool cxl_backed = false) const;

    /** All Table III rows against one baseline generation. */
    std::vector<ScalingResult>
    scalingTable(const CpuSpec &baseline) const;

    /**
     * Latency at 30% of the configuration's own peak (§VI low-load).
     * Uses the mean sojourn time, dominated by service time at low load.
     */
    double lowLoadLatencyMs(const AppProfile &app, const CpuSpec &cpu,
                            int cores, bool cxl_backed = false) const;

    /**
     * Median (across latency-reporting apps) of the GreenSKU's low-load
     * latency relative to @p baseline, each app scaled by its scaling
     * factor as in §VI. Paper: -8.3% / -2% / +16% vs Gen1/2/3.
     */
    double medianLowLoadRatio(const CpuSpec &baseline) const;

    /**
     * DevOps build slowdown of @p cpu relative to Gen3 at equal core
     * count (a Table II cell); >1 is slower.
     */
    double buildSlowdown(const AppProfile &app, const CpuSpec &cpu,
                         bool cxl_backed = false) const;

  private:
    PerfConfig config_;
};

} // namespace gsku::perf
