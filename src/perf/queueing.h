/**
 * @file
 * M/M/c queueing machinery behind the latency-vs-load curves (Figs. 7/8).
 *
 * A VM running a latency-critical application with k cores is modeled as
 * an M/M/k queue whose per-server rate is the application's per-core
 * service rate on that CPU. Tail latency percentiles come from the exact
 * sojourn-time distribution of the M/M/c FCFS queue:
 *
 *   P(T > t) = (1-C) P(S > t) + C P(S + W > t)
 *
 * with S ~ exp(mu), W ~ exp(c mu (1 - rho)) and C the Erlang-C waiting
 * probability. The percentile is found by bisection on t, which is smooth
 * and deterministic — exactly what the SLO search needs.
 */
#pragma once

namespace gsku::perf {

/**
 * Erlang-C: probability an arrival waits in an M/M/c queue.
 *
 * @param servers number of servers c (>= 1)
 * @param offered_load a = lambda / mu in Erlangs; must satisfy a < c
 */
double erlangC(int servers, double offered_load);

/** Mean waiting time in queue (ms) for M/M/c; lambda in req/s, mu per
 *  server in req/s. Returns +inf when the queue is unstable. */
double meanWaitMs(int servers, double mu, double lambda);

/**
 * The p-th percentile (p in (0,100)) of sojourn time in ms for an M/M/c
 * queue, or +infinity when lambda >= c*mu (saturated).
 *
 * @param servers number of servers
 * @param mu per-server service rate, requests/second
 * @param lambda arrival rate, requests/second
 */
double percentileSojournMs(int servers, double mu, double lambda, double p);

/** Saturation throughput c * mu, requests/second. */
double peakThroughput(int servers, double mu);

} // namespace gsku::perf
