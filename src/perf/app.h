/**
 * @file
 * Application profiles for the 20 benchmarked applications in the paper's
 * six classes (§V, Table III), and the fleet core-hour shares per class.
 *
 * Because we cannot run the paper's workloads on real Gen1/2/3 and Bergamo
 * servers, each application carries *sensitivity coefficients* — how
 * strongly its per-core performance depends on frequency, LLC capacity,
 * memory bandwidth, and memory latency. The coefficients are calibrated so
 * the derived per-core performance reproduces the paper's measured
 * artifacts (Table II build slowdowns, Table III scaling factors, Fig. 7/8
 * curve shapes, §VI low-load latency medians); the calibration is verified
 * by tests/perf/scaling_factor_test.cc. This substitutes hardware
 * measurement with a calibrated analytic model — the code path GSF
 * exercises downstream is identical (DESIGN.md §1).
 */
#pragma once

#include <string>
#include <vector>

namespace gsku::perf {

/** The six application classes of §V / Table III. */
enum class AppClass
{
    BigData,
    WebApp,
    RealTimeComms,
    MlInference,
    WebProxy,
    DevOps,
};

std::string toString(AppClass cls);

/** Share of fleet core-hours per class (Table III): 32/27/24/11/4/1. */
double fleetCoreHourShare(AppClass cls);

/** One benchmarked application. */
struct AppProfile
{
    std::string name;
    AppClass cls = AppClass::WebApp;
    bool production = false;           ///< Microsoft-internal service.
    bool throughput_only = false;      ///< DevOps builds (Table II).

    /** Mean per-request service time on one Genoa core, milliseconds. */
    double base_service_ms = 1.0;

    /**
     * Sensitivity exponents: per-core performance on CPU c relative to
     * Genoa is
     *   (ipc_c / ipc_genoa)
     *   * (freq_c / freq_genoa)^freq_sens
     *   * (llc_per_core_c / llc_per_core_genoa)^llc_sens
     *   * (bw_per_core_c / bw_per_core_genoa)^bw_sens .
     */
    double freq_sens = 0.5;
    double llc_sens = 0.0;
    double bw_sens = 0.0;

    /**
     * Service-time inflation when the working set is CXL-backed:
     * inflated = base * (1 + cxl_sens * latency_penalty), where
     * latency_penalty = (280ns - 140ns) / 140ns = 1.0 (§III).
     * An app with cxl_sens <= 0.05 runs entirely from CXL without a
     * "significant" slowdown (the paper's 20.2% of core-hours).
     */
    double cxl_sens = 0.1;
};

/** The catalog of all 20 applications, in Table III order. */
class AppCatalog
{
  public:
    static const std::vector<AppProfile> &all();

    /** Profiles of one class, in catalog order. */
    static std::vector<AppProfile> byClass(AppClass cls);

    /** Lookup by name; throws UserError when unknown. */
    static const AppProfile &byName(const std::string &name);

    /**
     * Fraction of fleet core-hours whose application runs from CXL
     * without significant slowdown (cxl_sens <= threshold), weighting
     * each app by its class share split evenly within the class.
     * The paper reports 20.2% at the default threshold.
     */
    static double cxlTolerantCoreHourShare(double threshold = 0.05);

    /** Per-app fleet core-hour weight (class share / apps in class). */
    static double fleetWeight(const AppProfile &app);
};

} // namespace gsku::perf
