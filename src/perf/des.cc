#include "perf/des.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/contracts.h"
#include "common/distributions.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace gsku::perf {

void
DesResult::checkInvariants() const
{
    GSKU_INVARIANT(completed >= 0,
                   "completed request count must be non-negative");
    GSKU_INVARIANT(mean_sojourn_ms >= 0.0,
                   "mean sojourn time must be non-negative");
    GSKU_INVARIANT(p50_ms >= 0.0 && p50_ms <= p95_ms && p95_ms <= p99_ms,
                   "latency percentiles must be ordered p50<=p95<=p99");
    // Busy time counts each started request's full service, so the last
    // in-flight requests can push measured utilization marginally past
    // 1.0 on short runs; anything beyond that slack is an energy-model
    // hazard (utilization feeds the derate curves).
    GSKU_INVARIANT(utilization >= 0.0 && utilization <= 1.01,
                   "core utilization must lie in [0, 1]");
}

QueueSimulator::QueueSimulator(DesConfig config) : config_(config)
{
    GSKU_REQUIRE(config_.servers >= 1, "need at least one server");
    GSKU_REQUIRE(config_.service_rate > 0.0,
                 "service rate must be positive");
    GSKU_REQUIRE(config_.arrival_rate >= 0.0,
                 "arrival rate must be non-negative");
    GSKU_REQUIRE(config_.arrival_rate <
                     config_.servers * config_.service_rate,
                 "simulated queue must be stable (lambda < c*mu)");
    GSKU_REQUIRE(config_.service_scv >= 0.0,
                 "service SCV must be non-negative");
    GSKU_REQUIRE(config_.measured_requests > 0,
                 "must measure at least one request");
    GSKU_REQUIRE(config_.warmup_requests >= 0,
                 "warmup must be non-negative");
}

double
QueueSimulator::sampleServiceS(Rng &rng) const
{
    const double mean = 1.0 / config_.service_rate;
    const double scv = config_.service_scv;
    if (scv == 0.0) {
        return mean;                        // Deterministic service.
    }
    if (std::abs(scv - 1.0) < 1e-12) {
        // Exponential.
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        return -std::log(u) * mean;
    }
    if (scv < 1.0) {
        // Erlang-k with k = ceil(1/scv): SCV = 1/k <= requested.
        const int k = static_cast<int>(std::ceil(1.0 / scv));
        double sum = 0.0;
        for (int i = 0; i < k; ++i) {
            double u;
            do {
                u = rng.uniform();
            } while (u <= 0.0);
            sum += -std::log(u);
        }
        return sum * mean / k;
    }
    // Balanced two-phase hyper-exponential matching mean and SCV.
    const double p =
        0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
    const double rate1 = 2.0 * p / mean;
    const double rate2 = 2.0 * (1.0 - p) / mean;
    double u;
    do {
        u = rng.uniform();
    } while (u <= 0.0);
    const double rate = rng.uniform() < p ? rate1 : rate2;
    return -std::log(u) / rate;
}

DesResult
QueueSimulator::run(std::uint64_t seed) const
{
    obs::TraceSpan span("des", "run");
    obs::ProfileScope prof("des.run");
    span.arg("servers", static_cast<std::int64_t>(config_.servers))
        .arg("seed", static_cast<std::uint64_t>(seed));
    // Accumulated locally and added once at the end: the event loop is
    // the hottest path in the perf model and must not touch shared
    // atomics per event.
    std::uint64_t events_processed = 0;

    Rng rng(seed);

    // Cores are interchangeable; track only the number busy and, when
    // all are busy, the FCFS backlog. Event queue holds departures.
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        departures;
    std::queue<double> backlog;     // Arrival times of queued requests.

    PercentileEstimator sojourns;
    OnlineStats sojourn_stats;
    double busy_time = 0.0;
    double clock = 0.0;
    double next_arrival = 0.0;
    long seen = 0;
    long measured = 0;
    const long target = config_.warmup_requests +
                        config_.measured_requests;

    const Exponential interarrival =
        Exponential(std::max(config_.arrival_rate, 1e-12));

    auto record = [&](double arrival_time, double depart_time,
                      double service) {
        busy_time += service;
        ++seen;
        if (seen > config_.warmup_requests) {
            const double sojourn_ms =
                (depart_time - arrival_time) * 1e3;
            sojourns.add(sojourn_ms);
            sojourn_stats.add(sojourn_ms);
            ++measured;
        }
    };

    double prev_clock = 0.0;
    while (measured < config_.measured_requests) {
        // Event-time monotonicity: the simulation clock never runs
        // backwards, whichever event type fires next.
        GSKU_INVARIANT(clock >= prev_clock,
                       "simulation clock moved backwards");
        prev_clock = clock;
        ++events_processed;
        if (!departures.empty() && departures.top() <= next_arrival) {
            // A core frees up; start the oldest queued request.
            clock = departures.top();
            departures.pop();
            if (!backlog.empty()) {
                const double arrival_time = backlog.front();
                backlog.pop();
                const double service = sampleServiceS(rng);
                departures.push(clock + service);
                record(arrival_time, clock + service, service);
            }
            continue;
        }
        // Next event is an arrival.
        clock = next_arrival;
        next_arrival = clock + interarrival.sample(rng);
        if (static_cast<int>(departures.size()) < config_.servers) {
            const double service = sampleServiceS(rng);
            departures.push(clock + service);
            record(clock, clock + service, service);
        } else {
            backlog.push(clock);
        }
        if (seen >= 4 * target) {
            break;      // Safety valve; unreachable for stable loads.
        }
    }

    DesResult result;
    result.completed = measured;
    result.mean_sojourn_ms = sojourn_stats.mean();
    result.p50_ms = sojourns.percentile(50.0);
    result.p95_ms = sojourns.percentile(95.0);
    result.p99_ms = sojourns.percentile(99.0);
    result.utilization =
        clock > 0.0
            ? busy_time / (clock * static_cast<double>(config_.servers))
            : 0.0;
    result.checkInvariants();
    GSKU_ENSURE(result.completed <= config_.measured_requests,
                "measured more requests than configured");
    static obs::Counter &events =
        obs::metrics().counter("des.events_processed");
    events.inc(events_processed);
    obs::profileWork(events_processed);
    return result;
}

} // namespace gsku::perf
