#include "perf/model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/ledger.h"
#include "perf/queueing.h"

namespace gsku::perf {

std::string
ScalingResult::display() const
{
    if (!feasible) {
        return ">1.5";
    }
    if (factor == 1.0) {
        return "1";
    }
    if (factor == 1.25) {
        return "1.25";
    }
    if (factor == 1.5) {
        return "1.5";
    }
    // Non-standard candidate sets can yield other factors.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", factor);
    return buf;
}

PerfModel::PerfModel(PerfConfig config) : config_(std::move(config))
{
    GSKU_REQUIRE(config_.baseline_vm_cores > 0,
                 "baseline VM must have cores");
    GSKU_REQUIRE(!config_.green_core_options.empty(),
                 "need at least one GreenSKU core option");
    GSKU_REQUIRE(config_.tail_percentile > 0.0 &&
                     config_.tail_percentile < 100.0,
                 "tail percentile must be in (0, 100)");
    GSKU_REQUIRE(config_.slo_load_fraction > 0.0 &&
                     config_.slo_load_fraction < 1.0,
                 "SLO load fraction must be in (0, 1)");
    GSKU_REQUIRE(config_.tolerance >= 0.0, "tolerance must be >= 0");
}

double
PerfModel::perCorePerf(const AppProfile &app, const CpuSpec &cpu) const
{
    const CpuSpec ref = CpuCatalog::genoa();
    const double ipc_term = cpu.ipc / ref.ipc;
    const double freq_term =
        std::pow(cpu.max_freq_ghz / ref.max_freq_ghz, app.freq_sens);
    const double llc_term = std::pow(
        cpu.llcPerCoreMib() / ref.llcPerCoreMib(), app.llc_sens);
    const double bw_term =
        std::pow(cpu.bwPerCoreGbps() / ref.bwPerCoreGbps(), app.bw_sens);
    return ipc_term * freq_term * llc_term * bw_term;
}

double
PerfModel::serviceMs(const AppProfile &app, const CpuSpec &cpu,
                     bool cxl_backed) const
{
    const double perf = perCorePerf(app, cpu);
    GSKU_ASSERT(perf > 0.0, "per-core performance must be positive");
    double service = app.base_service_ms / perf;
    if (cxl_backed) {
        service *= 1.0 + app.cxl_sens * config_.cxl_latency_penalty;
    }
    return service;
}

double
PerfModel::serviceRate(const AppProfile &app, const CpuSpec &cpu,
                       bool cxl_backed) const
{
    return 1e3 / serviceMs(app, cpu, cxl_backed);
}

double
PerfModel::peakQps(const AppProfile &app, const CpuSpec &cpu, int cores,
                   bool cxl_backed) const
{
    return peakThroughput(cores, serviceRate(app, cpu, cxl_backed));
}

double
PerfModel::p95LatencyMs(const AppProfile &app, const CpuSpec &cpu,
                        int cores, double qps, bool cxl_backed) const
{
    return percentileSojournMs(cores, serviceRate(app, cpu, cxl_backed),
                               qps, config_.tail_percentile);
}

SloSpec
PerfModel::slo(const AppProfile &app, const CpuSpec &baseline) const
{
    GSKU_REQUIRE(!app.throughput_only,
                 "throughput-only apps have no latency SLO: " + app.name);
    SloSpec spec;
    const double peak =
        peakQps(app, baseline, config_.baseline_vm_cores, false);
    spec.load_qps = config_.slo_load_fraction * peak;
    spec.p95_ms = p95LatencyMs(app, baseline, config_.baseline_vm_cores,
                               spec.load_qps, false);
    return spec;
}

LatencyCurve
PerfModel::curve(const AppProfile &app, const CpuSpec &cpu, int cores,
                 bool cxl_backed, int n_points) const
{
    GSKU_REQUIRE(n_points >= 2, "curve needs at least two points");
    LatencyCurve out;
    out.label = app.name + " on " + cpu.name + " (" +
                std::to_string(cores) + "c" +
                (cxl_backed ? ", CXL" : "") + ")";
    out.peak_qps = peakQps(app, cpu, cores, cxl_backed);

    const double mu = serviceRate(app, cpu, cxl_backed);
    for (int i = 0; i < n_points; ++i) {
        // Sweep to 99% of saturation; the last point shows the knee.
        const double frac =
            0.99 * static_cast<double>(i + 1) /
            static_cast<double>(n_points);
        LatencyPoint pt;
        pt.qps = frac * out.peak_qps;
        pt.p95_ms = percentileSojournMs(cores, mu, pt.qps, 95.0);
        pt.p99_ms = percentileSojournMs(cores, mu, pt.qps, 99.0);
        pt.mean_ms =
            serviceMs(app, cpu, cxl_backed) + meanWaitMs(cores, mu, pt.qps);
        out.points.push_back(pt);
    }
    return out;
}

ScalingResult
PerfModel::scalingFactor(const AppProfile &app, const CpuSpec &baseline,
                         bool cxl_backed) const
{
    const CpuSpec green = CpuCatalog::bergamo();
    ScalingResult result;

    auto candidates = config_.green_core_options;
    std::sort(candidates.begin(), candidates.end());

    if (app.throughput_only) {
        // Throughput matching: k cores on the GreenSKU must deliver the
        // baseline VM's aggregate throughput within tolerance.
        const double base_capacity =
            static_cast<double>(config_.baseline_vm_cores) *
            perCorePerf(app, baseline);
        for (int k : candidates) {
            const double green_capacity =
                static_cast<double>(k) * perCorePerf(app, green) /
                (cxl_backed
                     ? 1.0 + app.cxl_sens * config_.cxl_latency_penalty
                     : 1.0);
            const double floor =
                base_capacity * (1.0 - config_.throughput_tolerance);
            const bool met = green_capacity >= floor;
            obs::LedgerEntry(obs::LedgerEvent::PerfSloMargin)
                .field("app", app.name)
                .field("baseline", baseline.name)
                .field("cores", k)
                .field("mode", "throughput")
                .field("cxl_backed", cxl_backed)
                .field("met", met)
                .field("achieved", green_capacity)
                .field("limit", floor)
                .field("margin", (green_capacity - floor) / floor);
            if (met) {
                result.feasible = true;
                result.green_cores = k;
                result.factor = static_cast<double>(k) /
                                static_cast<double>(
                                    config_.baseline_vm_cores);
                return result;
            }
        }
        return result;
    }

    const SloSpec spec = slo(app, baseline);
    for (int k : candidates) {
        const double p95 =
            p95LatencyMs(app, green, k, spec.load_qps, cxl_backed);
        const double limit = spec.p95_ms * (1.0 + config_.tolerance);
        const bool met = p95 <= limit;
        obs::LedgerEntry(obs::LedgerEvent::PerfSloMargin)
            .field("app", app.name)
            .field("baseline", baseline.name)
            .field("cores", k)
            .field("mode", "latency")
            .field("cxl_backed", cxl_backed)
            .field("met", met)
            .field("achieved", p95)
            .field("limit", limit)
            .field("margin", (limit - p95) / limit);
        if (met) {
            result.feasible = true;
            result.green_cores = k;
            result.factor =
                static_cast<double>(k) /
                static_cast<double>(config_.baseline_vm_cores);
            return result;
        }
    }
    return result;
}

std::vector<ScalingResult>
PerfModel::scalingTable(const CpuSpec &baseline) const
{
    std::vector<ScalingResult> rows;
    rows.reserve(AppCatalog::all().size());
    for (const auto &app : AppCatalog::all()) {
        rows.push_back(scalingFactor(app, baseline));
    }
    return rows;
}

double
PerfModel::lowLoadLatencyMs(const AppProfile &app, const CpuSpec &cpu,
                            int cores, bool cxl_backed) const
{
    const double mu = serviceRate(app, cpu, cxl_backed);
    const double qps =
        config_.low_load_fraction * peakThroughput(cores, mu);
    return serviceMs(app, cpu, cxl_backed) + meanWaitMs(cores, mu, qps);
}

double
PerfModel::medianLowLoadRatio(const CpuSpec &baseline) const
{
    std::vector<double> ratios;
    const CpuSpec green = CpuCatalog::bergamo();
    for (const auto &app : AppCatalog::all()) {
        if (app.throughput_only) {
            continue;
        }
        const ScalingResult sf = scalingFactor(app, baseline);
        // Infeasible apps would not be deployed on the GreenSKU; compare
        // at the largest candidate size anyway, matching the paper's
        // "scaled with the scaling factor" methodology for deployed apps.
        const int green_cores =
            sf.feasible ? sf.green_cores : config_.green_core_options.back();
        const double base = lowLoadLatencyMs(
            app, baseline, config_.baseline_vm_cores, false);
        const double mine = lowLoadLatencyMs(app, green, green_cores, false);
        ratios.push_back(mine / base);
    }
    GSKU_ASSERT(!ratios.empty(), "no latency-reporting apps");
    std::sort(ratios.begin(), ratios.end());
    const std::size_t n = ratios.size();
    return n % 2 == 1 ? ratios[n / 2]
                      : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
}

double
PerfModel::buildSlowdown(const AppProfile &app, const CpuSpec &cpu,
                         bool cxl_backed) const
{
    GSKU_REQUIRE(app.throughput_only,
                 "buildSlowdown applies to DevOps builds: " + app.name);
    const CpuSpec ref = CpuCatalog::genoa();
    // Equal core counts (8), so the slowdown is the per-core service-time
    // ratio, including any CXL inflation on the measured CPU.
    return serviceMs(app, cpu, cxl_backed) / serviceMs(app, ref, false);
}

} // namespace gsku::perf
