#include "perf/app.h"

#include <algorithm>

#include "common/error.h"

namespace gsku::perf {

std::string
toString(AppClass cls)
{
    switch (cls) {
      case AppClass::BigData: return "Big Data";
      case AppClass::WebApp: return "Web App";
      case AppClass::RealTimeComms: return "Real-Time Communication";
      case AppClass::MlInference: return "ML Inference";
      case AppClass::WebProxy: return "Web Proxy";
      case AppClass::DevOps: return "DevOps";
    }
    GSKU_ASSERT(false, "unhandled AppClass");
}

double
fleetCoreHourShare(AppClass cls)
{
    // Table III "% of Fleet Core Hours".
    switch (cls) {
      case AppClass::BigData: return 0.32;
      case AppClass::WebApp: return 0.27;
      case AppClass::RealTimeComms: return 0.24;
      case AppClass::MlInference: return 0.11;
      case AppClass::WebProxy: return 0.04;
      case AppClass::DevOps: return 0.01;
    }
    GSKU_ASSERT(false, "unhandled AppClass");
}

namespace {

/** Shorthand builder keeping the catalog below readable. */
AppProfile
app(std::string name, AppClass cls, double service_ms, double freq_sens,
    double llc_sens, double bw_sens, double cxl_sens,
    bool production = false, bool throughput_only = false)
{
    AppProfile p;
    p.name = std::move(name);
    p.cls = cls;
    p.base_service_ms = service_ms;
    p.freq_sens = freq_sens;
    p.llc_sens = llc_sens;
    p.bw_sens = bw_sens;
    p.cxl_sens = cxl_sens;
    p.production = production;
    p.throughput_only = throughput_only;
    return p;
}

std::vector<AppProfile>
buildCatalog()
{
    using C = AppClass;
    std::vector<AppProfile> apps;

    // Big data: in-memory stores and OLTP databases. Masstree is
    // bandwidth-bound, Silo strongly LLC-bound (hence >1.5 everywhere),
    // Redis/Shore per-core insensitive.
    apps.push_back(app("Redis", C::BigData, 0.10, 0.00, 0.00, 0.00, 0.25));
    apps.push_back(
        app("Masstree", C::BigData, 1.10, 0.50, 0.25, 0.70, 0.35));
    apps.push_back(app("Silo", C::BigData, 1.50, 0.60, 1.00, 0.00, 0.30));
    apps.push_back(app("Shore", C::BigData, 1.20, 0.00, 0.00, 0.00, 0.04));

    // Web applications; WebF-* are Microsoft production services.
    apps.push_back(
        app("Xapian", C::WebApp, 4.00, 0.55, 0.10, 0.40, 0.20));
    apps.push_back(
        app("WebF-Dynamic", C::WebApp, 6.00, 0.70, 0.00, 0.00, 0.15, true));
    apps.push_back(
        app("WebF-Hot", C::WebApp, 3.00, 0.50, 0.20, 0.00, 0.25, true));
    apps.push_back(
        app("WebF-Cold", C::WebApp, 8.00, 0.00, 0.00, 0.00, 0.10, true));

    // Real-time communication. Moses's language models make it strongly
    // memory-latency bound (the Fig. 8 "more impacted" case).
    apps.push_back(
        app("Moses", C::RealTimeComms, 4.50, 0.55, 0.00, 0.15, 0.45));
    apps.push_back(
        app("Sphinx", C::RealTimeComms, 80.0, 0.70, 0.00, 0.00, 0.20));

    // ML inference: compute-bound, insensitive to the efficient core.
    apps.push_back(
        app("Img-DNN", C::MlInference, 10.0, 0.00, 0.00, 0.00, 0.03));

    // Web proxies: compute/network bound; HAProxy is the Fig. 8 "less
    // impacted" case (11% peak reduction under CXL).
    apps.push_back(app("Nginx", C::WebProxy, 0.20, 0.30, 0.00, 0.00, 0.08));
    apps.push_back(app("Caddy", C::WebProxy, 0.30, 0.00, 0.00, 0.00, 0.05));
    apps.push_back(app("Envoy", C::WebProxy, 0.25, 0.00, 0.00, 0.00, 0.06));
    apps.push_back(
        app("HAProxy", C::WebProxy, 0.15, 0.30, 0.00, 0.00, 0.11));
    apps.push_back(
        app("Traefik", C::WebProxy, 0.35, 0.30, 0.00, 0.00, 0.09));

    // DevOps builds: report throughput (build time) only; Table II.
    apps.push_back(app("Build-Python", C::DevOps, 240000.0, 0.20, 0.12,
                       0.00, 0.052, false, true));
    apps.push_back(app("Build-Wasm", C::DevOps, 300000.0, 0.45, 0.06, 0.00,
                       0.113, false, true));
    apps.push_back(app("Build-PHP", C::DevOps, 180000.0, 0.10, 0.155, 0.00,
                       0.18, false, true));

    return apps;
}

} // namespace

const std::vector<AppProfile> &
AppCatalog::all()
{
    static const std::vector<AppProfile> catalog = buildCatalog();
    return catalog;
}

std::vector<AppProfile>
AppCatalog::byClass(AppClass cls)
{
    std::vector<AppProfile> out;
    for (const auto &a : all()) {
        if (a.cls == cls) {
            out.push_back(a);
        }
    }
    return out;
}

const AppProfile &
AppCatalog::byName(const std::string &name)
{
    for (const auto &a : all()) {
        if (a.name == name) {
            return a;
        }
    }
    GSKU_REQUIRE(false, "unknown application: " + name);
    GSKU_ASSERT(false, "unreachable");
}

double
AppCatalog::fleetWeight(const AppProfile &app)
{
    const auto in_class = byClass(app.cls);
    GSKU_ASSERT(!in_class.empty(), "app class has no members");
    return fleetCoreHourShare(app.cls) /
           static_cast<double>(in_class.size());
}

double
AppCatalog::cxlTolerantCoreHourShare(double threshold)
{
    double share = 0.0;
    for (const auto &a : all()) {
        if (a.cxl_sens <= threshold) {
            share += fleetWeight(a);
        }
    }
    return share;
}

} // namespace gsku::perf
