/**
 * @file
 * CPU performance specifications (paper Table I) extended with the
 * memory-bandwidth and generational-IPC attributes the performance model
 * needs. Per-core performance is *derived* from these attributes per
 * application (see perf/model.h), never hard-coded per (app, CPU) pair.
 */
#pragma once

#include <string>

#include "carbon/sku.h"
#include "common/units.h"

namespace gsku::perf {

/** A CPU as the performance model sees it. */
struct CpuSpec
{
    std::string name;
    carbon::Generation generation;
    int cores_per_socket = 0;
    double max_freq_ghz = 0.0;      ///< Table I.
    double llc_mib = 0.0;           ///< Last-level cache per socket.
    Power tdp;
    double mem_bw_gbps = 0.0;       ///< Socket memory bandwidth (incl. CXL).

    /**
     * Generational instructions-per-cycle factor relative to Zen 4
     * (Genoa/Bergamo = 1.10, Milan/Zen 3 = 1.00, Rome/Zen 2 = 0.88).
     * Bergamo's Zen 4c core has Zen 4 IPC with less cache (§III).
     */
    double ipc = 1.0;

    double llcPerCoreMib() const;
    double bwPerCoreGbps() const;
};

/** The four CPUs of Table I. */
class CpuCatalog
{
  public:
    /** AMD Bergamo: 128 c, 3.0 GHz, 256 MiB LLC, 350 W, 460+100 GB/s. */
    static CpuSpec bergamo();

    /** AMD Rome (Gen1): 64 c, 3.0 GHz, 256 MiB, 240 W, DDR4 BW. */
    static CpuSpec rome();

    /** AMD Milan (Gen2): 64 c, 3.7 GHz, 256 MiB, 280 W, DDR4 BW. */
    static CpuSpec milan();

    /** AMD Genoa (Gen3): 80 c, 3.7 GHz, 384 MiB, 300-350 W, 460 GB/s. */
    static CpuSpec genoa();

    /** CPU for a generation; GreenSku maps to Bergamo. */
    static CpuSpec forGeneration(carbon::Generation gen);
};

} // namespace gsku::perf
