#include "perf/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace gsku::perf {

double
DiurnalLoad::qpsAt(double hour) const
{
    GSKU_REQUIRE(hour >= 0.0 && hour <= 24.0, "hour must be in [0, 24]");
    GSKU_REQUIRE(trough_fraction > 0.0 && trough_fraction <= 1.0,
                 "trough fraction must be in (0, 1]");
    const double mid = (1.0 + trough_fraction) / 2.0;
    const double amplitude = (1.0 - trough_fraction) / 2.0;
    const double phase = 2.0 * M_PI * (hour - peak_hour) / 24.0;
    return peak_qps * (mid + amplitude * std::cos(phase));
}

double
AutoScaleResult::coreHoursSaved() const
{
    if (static_core_hours <= 0.0) {
        return 0.0;
    }
    return 1.0 - scaled_core_hours / static_core_hours;
}

AutoScaler::AutoScaler(const PerfModel &model)
    : AutoScaler(model, Config{})
{
}

AutoScaler::AutoScaler(const PerfModel &model, Config config)
    : model_(model), config_(std::move(config))
{
    GSKU_REQUIRE(!config_.core_options.empty(),
                 "auto-scaler needs candidate sizes");
    GSKU_REQUIRE(std::is_sorted(config_.core_options.begin(),
                                config_.core_options.end()),
                 "core options must be sorted ascending");
    GSKU_REQUIRE(config_.interval_h > 0.0 && config_.interval_h <= 24.0,
                 "interval must be in (0, 24] hours");
    GSKU_REQUIRE(config_.slo_headroom > 0.0 && config_.slo_headroom <= 1.0,
                 "SLO headroom must be in (0, 1]");
}

int
AutoScaler::coresFor(const AppProfile &app, const CpuSpec &cpu, double qps,
                     const SloSpec &slo) const
{
    for (int cores : config_.core_options) {
        const double p95 = model_.p95LatencyMs(app, cpu, cores, qps);
        if (p95 <= slo.p95_ms * config_.slo_headroom) {
            return cores;
        }
    }
    return config_.core_options.back();
}

AutoScaleResult
AutoScaler::simulateDay(const AppProfile &app, const CpuSpec &cpu,
                        const DiurnalLoad &load) const
{
    GSKU_REQUIRE(!app.throughput_only,
                 "auto-scaling applies to latency-critical apps: " +
                     app.name);
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());

    AutoScaleResult result;
    result.static_cores =
        coresFor(app, cpu, load.qpsAt(load.peak_hour), slo);

    for (double hour = 0.0; hour < 24.0 - 1e-9;
         hour += config_.interval_h) {
        ScaleInterval interval;
        interval.hour = hour;
        interval.qps = load.qpsAt(std::min(24.0, hour));
        interval.cores = coresFor(app, cpu, interval.qps, slo);
        interval.p95_ms =
            model_.p95LatencyMs(app, cpu, interval.cores, interval.qps);
        result.schedule.push_back(interval);
        result.scaled_core_hours +=
            interval.cores * config_.interval_h;
        result.static_core_hours +=
            result.static_cores * config_.interval_h;
    }
    return result;
}

} // namespace gsku::perf
