/**
 * @file
 * Discrete-event simulation of a multi-core VM serving requests —
 * an independent check on the analytic M/M/c latency model.
 *
 * The analytic model (perf/queueing.h) gives closed-form percentiles;
 * this simulator generates actual Poisson arrivals and exponential
 * service times on c cores with FCFS queueing and measures empirical
 * latency percentiles. Tests assert the two agree, which protects every
 * downstream result (SLOs, scaling factors, Figs. 7/8) against errors
 * in the queueing math.
 *
 * The simulator also supports what the closed form cannot: general
 * service-time distributions (via a squared-coefficient-of-variation
 * knob) for sensitivity studies on the exponential-service assumption.
 */
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace gsku::perf {

/** Simulation configuration. */
struct DesConfig
{
    int servers = 8;                ///< Cores in the VM.
    double service_rate = 100.0;    ///< Per-core, requests/second.
    double arrival_rate = 500.0;    ///< Poisson arrivals, requests/second.

    /**
     * Squared coefficient of variation of service times:
     * 1.0 = exponential (the M/M/c assumption), 0 = deterministic,
     * >1 = hyper-exponential-like (heavier tail).
     */
    double service_scv = 1.0;

    long warmup_requests = 2000;    ///< Discarded before measuring.
    long measured_requests = 100000;
};

/** Result of one simulation run. */
struct DesResult
{
    long completed = 0;
    double mean_sojourn_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double utilization = 0.0;       ///< Measured core busy fraction.

    /**
     * Contract check: latency percentiles are ordered (p50 <= p95 <=
     * p99), sojourns are non-negative, and utilization lies in [0, 1].
     * QueueSimulator::run() ENSUREs this on every result; throws
     * InternalError on violation.
     */
    void checkInvariants() const;
};

/** FCFS multi-server queue simulator. */
class QueueSimulator
{
  public:
    explicit QueueSimulator(DesConfig config);

    /** Run once with the given seed; deterministic per (config, seed). */
    DesResult run(std::uint64_t seed) const;

  private:
    DesConfig config_;

    /** Draw one service time honoring the configured SCV. */
    double sampleServiceS(Rng &rng) const;
};

} // namespace gsku::perf
