#include "perf/cpu.h"

#include "common/error.h"

namespace gsku::perf {

double
CpuSpec::llcPerCoreMib() const
{
    GSKU_REQUIRE(cores_per_socket > 0, "CPU has no cores");
    return llc_mib / static_cast<double>(cores_per_socket);
}

double
CpuSpec::bwPerCoreGbps() const
{
    GSKU_REQUIRE(cores_per_socket > 0, "CPU has no cores");
    return mem_bw_gbps / static_cast<double>(cores_per_socket);
}

CpuSpec
CpuCatalog::bergamo()
{
    // 460 GB/s of DDR5 plus ~100 GB/s via 32 CXL/PCIe5 lanes (§III).
    return CpuSpec{"AMD Bergamo", carbon::Generation::GreenSku, 128, 3.0,
                   256.0, Power::watts(350.0), 560.0, 1.10};
}

CpuSpec
CpuCatalog::rome()
{
    // 8-channel DDR4-3200: ~205 GB/s.
    return CpuSpec{"AMD Rome", carbon::Generation::Gen1, 64, 3.0, 256.0,
                   Power::watts(240.0), 204.8, 0.88};
}

CpuSpec
CpuCatalog::milan()
{
    return CpuSpec{"AMD Milan", carbon::Generation::Gen2, 64, 3.7, 256.0,
                   Power::watts(280.0), 204.8, 1.00};
}

CpuSpec
CpuCatalog::genoa()
{
    return CpuSpec{"AMD Genoa", carbon::Generation::Gen3, 80, 3.7, 384.0,
                   Power::watts(320.0), 460.0, 1.10};
}

CpuSpec
CpuCatalog::forGeneration(carbon::Generation gen)
{
    switch (gen) {
      case carbon::Generation::Gen1: return rome();
      case carbon::Generation::Gen2: return milan();
      case carbon::Generation::Gen3: return genoa();
      case carbon::Generation::GreenSku: return bergamo();
    }
    GSKU_ASSERT(false, "unhandled Generation");
}

} // namespace gsku::perf
