#include "carbon/catalog.h"

#include "common/error.h"

namespace gsku::carbon {

namespace {

constexpr double kDdr5WattsPerGb = 0.37;
constexpr double kDdr5EmbodiedKgPerGb = 1.65;
constexpr double kDdr4WattsPerGb = 0.46;
constexpr double kNewSsdWattsPerTb = 5.6;
constexpr double kNewSsdEmbodiedKgPerTb = 17.3;
constexpr double kReusedSsdWattsPerDrive = 8.0;

} // namespace

Component
Catalog::bergamoCpu()
{
    return Component{"AMD Bergamo 128c", ComponentKind::Cpu,
                     Power::watts(400.0), CarbonMass::kg(28.3)};
}

Component
Catalog::genoaCpu()
{
    return Component{"AMD Genoa 80c", ComponentKind::Cpu,
                     Power::watts(320.0), CarbonMass::kg(30.0)};
}

Component
Catalog::milanCpu()
{
    return Component{"AMD Milan 64c", ComponentKind::Cpu,
                     Power::watts(280.0), CarbonMass::kg(24.0)};
}

Component
Catalog::romeCpu()
{
    return Component{"AMD Rome 64c", ComponentKind::Cpu,
                     Power::watts(240.0), CarbonMass::kg(22.0)};
}

Component
Catalog::ddr5Dimm(double capacity_gb)
{
    GSKU_REQUIRE(capacity_gb > 0.0, "DIMM capacity must be positive");
    return Component{"DDR5 DIMM", ComponentKind::Dram,
                     Power::watts(kDdr5WattsPerGb * capacity_gb),
                     CarbonMass::kg(kDdr5EmbodiedKgPerGb * capacity_gb)};
}

Component
Catalog::reusedDdr4Dimm(double capacity_gb)
{
    GSKU_REQUIRE(capacity_gb > 0.0, "DIMM capacity must be positive");
    Component c{"Reused DDR4 DIMM (CXL)", ComponentKind::Dram,
                Power::watts(kDdr4WattsPerGb * capacity_gb),
                CarbonMass::kg(0.0)};
    c.reused = true;
    return c;
}

Component
Catalog::newSsd(double capacity_tb)
{
    GSKU_REQUIRE(capacity_tb > 0.0, "SSD capacity must be positive");
    return Component{"E1.S NVMe SSD", ComponentKind::Ssd,
                     Power::watts(kNewSsdWattsPerTb * capacity_tb),
                     CarbonMass::kg(kNewSsdEmbodiedKgPerTb * capacity_tb)};
}

Component
Catalog::reusedSsd(double capacity_tb)
{
    GSKU_REQUIRE(capacity_tb > 0.0, "SSD capacity must be positive");
    Component c{"Reused m.2 SSD", ComponentKind::Ssd,
                Power::watts(kReusedSsdWattsPerDrive),
                CarbonMass::kg(0.0)};
    c.reused = true;
    return c;
}

Component
Catalog::paperDdr4Dimm(double capacity_gb)
{
    GSKU_REQUIRE(capacity_gb > 0.0, "DIMM capacity must be positive");
    Component c{"Reused DDR4 DIMM (Table V)", ComponentKind::Dram,
                Power::watts(0.37 * capacity_gb), CarbonMass::kg(0.0)};
    c.reused = true;
    return c;
}

Component
Catalog::paperCxlController()
{
    return Component{"CXL controller (Table V)",
                     ComponentKind::CxlController, Power::watts(5.8),
                     CarbonMass::kg(2.5)};
}

Component
Catalog::cxlController()
{
    Component c{"CXL controller", ComponentKind::CxlController,
                Power::watts(5.8), CarbonMass::kg(2.5)};
    c.derate_override = kCxlDerate;
    return c;
}

Component
Catalog::serverMisc()
{
    return Component{"NIC/fans/board/PSU", ComponentKind::Misc,
                     Power::watts(30.0), CarbonMass::kg(90.0)};
}

Component
Catalog::serverMiscNoNic()
{
    return Component{"Fans/board/PSU", ComponentKind::Misc,
                     Power::watts(15.0), CarbonMass::kg(60.0)};
}

Component
Catalog::nic()
{
    return Component{"100G NIC", ComponentKind::Nic, Power::watts(15.0),
                     CarbonMass::kg(30.0)};
}

Component
Catalog::reusedNic()
{
    Component c{"Reused 40G NIC", ComponentKind::Nic, Power::watts(18.0),
                CarbonMass::kg(0.0)};
    c.reused = true;
    return c;
}

Component
Catalog::lpddrDimm(double capacity_gb)
{
    GSKU_REQUIRE(capacity_gb > 0.0, "DIMM capacity must be positive");
    return Component{"LPDDR5 DIMM", ComponentKind::Dram,
                     Power::watts(0.25 * capacity_gb),
                     CarbonMass::kg(1.85 * capacity_gb)};
}

} // namespace gsku::carbon
