/**
 * @file
 * Server hardware components as the carbon model sees them: a thermal
 * design power, an embodied-carbon mass, and a derating behaviour.
 *
 * Embodied emissions follow the paper's accounting: counted once per
 * component across the supply chain; components in their "second life"
 * (reused DDR4 DIMMs, reused SSDs) carry zero embodied carbon (§V).
 */
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace gsku::carbon {

/** Broad component classes used for breakdowns (Fig. 1) and reliability. */
enum class ComponentKind
{
    Cpu,
    Dram,
    Ssd,
    Hdd,
    CxlController,
    Nic,
    Misc,       ///< Fans, BMC, mainboard, PSU, chassis.
};

/** Returns a human-readable name for a component kind. */
std::string toString(ComponentKind kind);

/**
 * One physical component instance inside a server.
 *
 * @c derate_override lets a component opt out of the load-dependent TDP
 * derating of Eq. 1 (e.g. a CXL controller draws near-constant power);
 * a negative value means "use the model-wide derate factor".
 */
struct Component
{
    std::string name;
    ComponentKind kind = ComponentKind::Misc;
    Power tdp;                      ///< Thermal design power of this unit.
    CarbonMass embodied;            ///< kgCO2e; zero when reused.
    bool reused = false;            ///< Second-life component (§V).
    double derate_override = -1.0;  ///< <0: use the model-wide derate.

    /** True when this component has a fixed (non-derated) power draw. */
    bool hasDerateOverride() const { return derate_override >= 0.0; }
};

/** A component plus how many identical copies the server carries. */
struct ComponentSlot
{
    Component component;
    int count = 1;
};

/** Sum of TDP over a slot's copies. */
Power slotTdp(const ComponentSlot &slot);

/** Sum of embodied carbon over a slot's copies. */
CarbonMass slotEmbodied(const ComponentSlot &slot);

} // namespace gsku::carbon
