#include "carbon/component.h"

#include "common/error.h"

namespace gsku::carbon {

std::string
toString(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::Cpu: return "CPU";
      case ComponentKind::Dram: return "DRAM";
      case ComponentKind::Ssd: return "SSD";
      case ComponentKind::Hdd: return "HDD";
      case ComponentKind::CxlController: return "CXL";
      case ComponentKind::Nic: return "NIC";
      case ComponentKind::Misc: return "Misc";
    }
    GSKU_ASSERT(false, "unhandled ComponentKind");
}

Power
slotTdp(const ComponentSlot &slot)
{
    GSKU_REQUIRE(slot.count >= 0, "component count must be non-negative");
    return slot.component.tdp * static_cast<double>(slot.count);
}

CarbonMass
slotEmbodied(const ComponentSlot &slot)
{
    GSKU_REQUIRE(slot.count >= 0, "component count must be non-negative");
    return slot.component.embodied * static_cast<double>(slot.count);
}

} // namespace gsku::carbon
