/**
 * @file
 * Server SKU descriptions: a named composition of components plus the
 * capacities the cluster simulator schedules against. The five standard
 * SKUs are exactly the rows of the paper's Table IV / Table VIII.
 */
#pragma once

#include <string>
#include <vector>

#include "carbon/component.h"
#include "common/units.h"

namespace gsku::carbon {

/** Which hardware generation a SKU belongs to (drives perf + traces). */
enum class Generation
{
    Gen1,       ///< AMD Rome.
    Gen2,       ///< AMD Milan.
    Gen3,       ///< AMD Genoa (the paper's baseline SKU).
    GreenSku,   ///< AMD Bergamo-based GreenSKU.
};

std::string toString(Generation gen);

/**
 * A compute server SKU: component list plus schedulable capacities.
 * Invariants are checked by validate(); the factory functions below
 * always return validated SKUs.
 */
struct ServerSku
{
    std::string name;
    Generation generation = Generation::Gen3;
    int cores = 0;                  ///< Schedulable physical cores.
    int form_factor_u = 2;          ///< Rack units occupied.
    MemCapacity local_memory;       ///< Direct-attached (DDR5) memory.
    MemCapacity cxl_memory;         ///< CXL-attached (reused DDR4) memory.
    StorageCapacity storage;        ///< Total SSD capacity.
    std::vector<ComponentSlot> slots;

    /** Total schedulable memory (local + CXL). */
    MemCapacity totalMemory() const { return local_memory + cxl_memory; }

    /** Memory-to-core ratio in GB per core (9.6 baseline vs 8 GreenSKU). */
    double memoryPerCore() const;

    /** Fraction of memory that is CXL-attached (the Fig. 10 shading). */
    double cxlMemoryFraction() const;

    /** Count of component units of a kind (e.g. DIMMs for AFR math). */
    int unitCount(ComponentKind kind) const;

    /** Throws UserError when the SKU is inconsistent. */
    void validate() const;
};

/**
 * Factory for the paper's SKU configurations (Table IV / VIII rows).
 * All use the open-source component catalog.
 */
class StandardSkus
{
  public:
    /** Gen3 baseline: 80 cores, 12x64 GB DDR5, 6x2 TB SSD. */
    static ServerSku baseline();

    /** Baseline-Resized: memory:core reduced 9.6 -> 8 (10x64 GB). */
    static ServerSku baselineResized();

    /** GreenSKU-Efficient: Bergamo, 12x96 GB DDR5, 5x4 TB SSD. */
    static ServerSku greenEfficient();

    /** GreenSKU-CXL: 12x64 DDR5 + 8x32 reused DDR4 via 2 CXL cards. */
    static ServerSku greenCxl();

    /** GreenSKU-Full: GreenSKU-CXL with 2x4 TB new + 12x1 TB reused SSD. */
    static ServerSku greenFull();

    /** Gen1 (Rome) server, for mixed-generation fleets. */
    static ServerSku gen1();

    /** Gen2 (Milan) server, for mixed-generation fleets. */
    static ServerSku gen2();

    /**
     * The §V worked-example variant of GreenSKU-CXL, built verbatim from
     * Table V (DDR4 at 0.37 W/GB, derated CXL card, no server misc).
     * Reproduces E_emb,s = 1644 kg and P_s = 403 W.
     */
    static ServerSku paperExampleCxl();

    /** All five Table IV/VIII rows in paper order. */
    static std::vector<ServerSku> tableFourRows();
};

} // namespace gsku::carbon
