#include "carbon/sku.h"

#include "carbon/catalog.h"
#include "common/error.h"

namespace gsku::carbon {

std::string
toString(Generation gen)
{
    switch (gen) {
      case Generation::Gen1: return "Gen1";
      case Generation::Gen2: return "Gen2";
      case Generation::Gen3: return "Gen3";
      case Generation::GreenSku: return "GreenSKU";
    }
    GSKU_ASSERT(false, "unhandled Generation");
}

double
ServerSku::memoryPerCore() const
{
    GSKU_REQUIRE(cores > 0, "SKU has no cores");
    return totalMemory().asGb() / static_cast<double>(cores);
}

double
ServerSku::cxlMemoryFraction() const
{
    const double total = totalMemory().asGb();
    if (total <= 0.0) {
        return 0.0;
    }
    return cxl_memory.asGb() / total;
}

int
ServerSku::unitCount(ComponentKind kind) const
{
    int n = 0;
    for (const auto &slot : slots) {
        if (slot.component.kind == kind) {
            n += slot.count;
        }
    }
    return n;
}

void
ServerSku::validate() const
{
    GSKU_REQUIRE(!name.empty(), "SKU must have a name");
    GSKU_REQUIRE(cores > 0, "SKU must have cores: " + name);
    GSKU_REQUIRE(form_factor_u > 0, "SKU form factor must be positive");
    GSKU_REQUIRE(local_memory.asGb() >= 0.0 && cxl_memory.asGb() >= 0.0,
                 "memory capacities must be non-negative");
    GSKU_REQUIRE(!slots.empty(), "SKU must have components: " + name);
    bool has_cpu = false;
    for (const auto &slot : slots) {
        GSKU_REQUIRE(slot.count > 0, "component slot with zero count");
        has_cpu |= slot.component.kind == ComponentKind::Cpu;
    }
    GSKU_REQUIRE(has_cpu, "SKU must contain a CPU: " + name);
    const bool has_cxl_dram = cxl_memory.asGb() > 0.0;
    const bool has_cxl_card = unitCount(ComponentKind::CxlController) > 0;
    GSKU_REQUIRE(has_cxl_dram == has_cxl_card,
                 "CXL memory requires CXL controllers and vice versa: " +
                     name);
}

namespace {

ServerSku
finish(ServerSku sku)
{
    sku.validate();
    return sku;
}

} // namespace

ServerSku
StandardSkus::baseline()
{
    ServerSku sku;
    sku.name = "Baseline";
    sku.generation = Generation::Gen3;
    sku.cores = 80;
    sku.local_memory = MemCapacity::gb(12 * 64.0);
    sku.storage = StorageCapacity::tb(6 * 2.0);
    sku.slots = {
        {Catalog::genoaCpu(), 1},
        {Catalog::ddr5Dimm(64.0), 12},
        {Catalog::newSsd(2.0), 6},
        {Catalog::serverMisc(), 1},
    };
    return finish(sku);
}

ServerSku
StandardSkus::baselineResized()
{
    ServerSku sku;
    sku.name = "Baseline-Resized";
    sku.generation = Generation::Gen3;
    sku.cores = 80;
    sku.local_memory = MemCapacity::gb(10 * 64.0);
    sku.storage = StorageCapacity::tb(6 * 2.0);
    sku.slots = {
        {Catalog::genoaCpu(), 1},
        {Catalog::ddr5Dimm(64.0), 10},
        {Catalog::newSsd(2.0), 6},
        {Catalog::serverMisc(), 1},
    };
    return finish(sku);
}

ServerSku
StandardSkus::greenEfficient()
{
    ServerSku sku;
    sku.name = "GreenSKU-Efficient";
    sku.generation = Generation::GreenSku;
    sku.cores = 128;
    sku.local_memory = MemCapacity::gb(12 * 96.0);
    sku.storage = StorageCapacity::tb(5 * 4.0);
    sku.slots = {
        {Catalog::bergamoCpu(), 1},
        {Catalog::ddr5Dimm(96.0), 12},
        {Catalog::newSsd(4.0), 5},
        {Catalog::serverMisc(), 1},
    };
    return finish(sku);
}

ServerSku
StandardSkus::greenCxl()
{
    ServerSku sku;
    sku.name = "GreenSKU-CXL";
    sku.generation = Generation::GreenSku;
    sku.cores = 128;
    sku.local_memory = MemCapacity::gb(12 * 64.0);
    sku.cxl_memory = MemCapacity::gb(8 * 32.0);
    sku.storage = StorageCapacity::tb(5 * 4.0);
    sku.slots = {
        {Catalog::bergamoCpu(), 1},
        {Catalog::ddr5Dimm(64.0), 12},
        {Catalog::reusedDdr4Dimm(32.0), 8},
        {Catalog::cxlController(), 2},
        {Catalog::newSsd(4.0), 5},
        {Catalog::serverMisc(), 1},
    };
    return finish(sku);
}

ServerSku
StandardSkus::greenFull()
{
    ServerSku sku;
    sku.name = "GreenSKU-Full";
    sku.generation = Generation::GreenSku;
    sku.cores = 128;
    sku.local_memory = MemCapacity::gb(12 * 64.0);
    sku.cxl_memory = MemCapacity::gb(8 * 32.0);
    sku.storage = StorageCapacity::tb(2 * 4.0 + 12 * 1.0);
    sku.slots = {
        {Catalog::bergamoCpu(), 1},
        {Catalog::ddr5Dimm(64.0), 12},
        {Catalog::reusedDdr4Dimm(32.0), 8},
        {Catalog::cxlController(), 2},
        {Catalog::newSsd(4.0), 2},
        {Catalog::reusedSsd(1.0), 12},
        {Catalog::serverMisc(), 1},
    };
    return finish(sku);
}

ServerSku
StandardSkus::gen1()
{
    ServerSku sku;
    sku.name = "Gen1";
    sku.generation = Generation::Gen1;
    sku.cores = 64;
    sku.local_memory = MemCapacity::gb(12 * 32.0);
    sku.storage = StorageCapacity::tb(4 * 1.0);
    sku.slots = {
        {Catalog::romeCpu(), 1},
        {Catalog::ddr5Dimm(32.0), 12},
        {Catalog::newSsd(1.0), 4},
        {Catalog::serverMisc(), 1},
    };
    return finish(sku);
}

ServerSku
StandardSkus::gen2()
{
    ServerSku sku;
    sku.name = "Gen2";
    sku.generation = Generation::Gen2;
    sku.cores = 64;
    sku.local_memory = MemCapacity::gb(12 * 48.0);
    sku.storage = StorageCapacity::tb(4 * 2.0);
    sku.slots = {
        {Catalog::milanCpu(), 1},
        {Catalog::ddr5Dimm(48.0), 12},
        {Catalog::newSsd(2.0), 4},
        {Catalog::serverMisc(), 1},
    };
    return finish(sku);
}

ServerSku
StandardSkus::paperExampleCxl()
{
    ServerSku sku;
    sku.name = "GreenSKU-CXL (Sec. V example)";
    sku.generation = Generation::GreenSku;
    sku.cores = 128;
    sku.local_memory = MemCapacity::gb(768.0);
    sku.cxl_memory = MemCapacity::gb(256.0);
    sku.storage = StorageCapacity::tb(20.0);
    sku.slots = {
        {Catalog::bergamoCpu(), 1},
        {Catalog::ddr5Dimm(64.0), 12},
        {Catalog::paperDdr4Dimm(32.0), 8},
        {Catalog::paperCxlController(), 2},
        {Catalog::newSsd(4.0), 5},
    };
    return finish(sku);
}

std::vector<ServerSku>
StandardSkus::tableFourRows()
{
    return {baseline(), baselineResized(), greenEfficient(), greenCxl(),
            greenFull()};
}

} // namespace gsku::carbon
