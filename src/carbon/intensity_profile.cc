#include "carbon/intensity_profile.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/error.h"

namespace gsku::carbon {

IntensityProfile::IntensityProfile(CarbonIntensity mean,
                                   double swing_fraction,
                                   double cleanest_hour)
    : mean_(mean), swing_fraction_(swing_fraction),
      cleanest_hour_(cleanest_hour)
{
    GSKU_REQUIRE(mean.asKgPerKwh() >= 0.0,
                 "mean intensity must be non-negative");
    GSKU_REQUIRE(swing_fraction >= 0.0 && swing_fraction < 1.0,
                 "swing fraction must be in [0, 1)");
    GSKU_REQUIRE(cleanest_hour >= 0.0 && cleanest_hour < 24.0,
                 "cleanest hour must be in [0, 24)");
}

IntensityProfile
IntensityProfile::solarHeavy(CarbonIntensity mean)
{
    return IntensityProfile(mean, 0.4, 13.0);
}

IntensityProfile
IntensityProfile::flat(CarbonIntensity mean)
{
    return IntensityProfile(mean, 0.0, 0.0);
}

CarbonIntensity
IntensityProfile::at(double hour) const
{
    GSKU_REQUIRE(hour >= 0.0 && hour <= 24.0, "hour must be in [0, 24]");
    const double phase = 2.0 * M_PI * (hour - cleanest_hour_) / 24.0;
    // Cosine trough at the cleanest hour; integrates to the mean.
    const CarbonIntensity ci =
        mean_ * (1.0 - swing_fraction_ * std::cos(phase));
    GSKU_ENSURE(ci.asKgPerKwh() >= 0.0 &&
                    ci <= mean_ * (1.0 + swing_fraction_ + 1e-9),
                "profile intensity left its [mean*(1-s), mean*(1+s)] band");
    return ci;
}

CarbonIntensity
IntensityProfile::cleanestWindowMean(double window_hours) const
{
    GSKU_REQUIRE(window_hours > 0.0 && window_hours <= 24.0,
                 "window must be in (0, 24] hours");
    // The cleanest window is centered on the cleanest hour by symmetry;
    // integrate the profile over it numerically.
    const int steps = 256;
    double sum = 0.0;
    for (int i = 0; i < steps; ++i) {
        double h = cleanest_hour_ +
                   window_hours * ((i + 0.5) / steps - 0.5);
        h = std::fmod(h + 24.0, 24.0);
        sum += at(h).asKgPerKwh();
    }
    const CarbonIntensity window_mean = CarbonIntensity::kgPerKwh(sum / steps);
    // Monotone-profile contract: the window centered on the cleanest
    // hour can never be dirtier than the daily mean, and widening the
    // window can only move it toward the mean — downstream shifting
    // savings rely on mean - clean >= 0.
    GSKU_ENSURE(window_mean <= mean_ * (1.0 + 1e-9),
                "cleanest-window mean exceeds the daily mean");
    return window_mean;
}

double
TemporalShifter::operationalSavings(const IntensityProfile &profile,
                                    double deferrable_fraction,
                                    double window_hours)
{
    GSKU_REQUIRE(deferrable_fraction >= 0.0 && deferrable_fraction <= 1.0,
                 "deferrable fraction must be in [0, 1]");
    const double mean = profile.dailyMean().asKgPerKwh();
    if (mean <= 0.0) {
        return 0.0;
    }
    const double clean =
        profile.cleanestWindowMean(window_hours).asKgPerKwh();
    return deferrable_fraction * (mean - clean) / mean;
}

double
TemporalShifter::totalSavings(const IntensityProfile &profile,
                              double deferrable_fraction,
                              double window_hours,
                              double operational_share)
{
    GSKU_REQUIRE(operational_share >= 0.0 && operational_share <= 1.0,
                 "operational share must be in [0, 1]");
    return operational_share * operationalSavings(profile,
                                                  deferrable_fraction,
                                                  window_hours);
}

} // namespace gsku::carbon
