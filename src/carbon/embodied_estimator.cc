#include "carbon/embodied_estimator.h"

#include "common/error.h"

namespace gsku::carbon {

double
kgCo2PerCm2(ProcessNode node)
{
    // Back-solved so the bottom-up estimates of the DieCatalog packages
    // reproduce the Appendix A Table V top-down values (the bridge runs
    // Table V -> die areas -> per-area intensity, not the reverse);
    // magnitudes are consistent with IMEC/ACT-class figures where the
    // supply-chain scope matches. See docs/calibration.md.
    switch (node) {
      case ProcessNode::N5: return 2.8;
      case ProcessNode::N7: return 2.1;
      case ProcessNode::N16: return 1.0;
      case ProcessNode::Dram1x: return 4.2;
      case ProcessNode::Nand: return 1.85;
    }
    GSKU_ASSERT(false, "unhandled ProcessNode");
}

CarbonMass
estimateEmbodied(const PackageSpec &package)
{
    GSKU_REQUIRE(!package.dies.empty(),
                 "package must contain at least one die");
    GSKU_REQUIRE(package.packaging_overhead >= 0.0,
                 "packaging overhead must be non-negative");
    double die_kg = 0.0;
    for (const DieSpec &die : package.dies) {
        GSKU_REQUIRE(die.area_cm2 > 0.0, "die area must be positive: " +
                                             die.name);
        GSKU_REQUIRE(die.count > 0, "die count must be positive: " +
                                        die.name);
        die_kg += die.area_cm2 * die.count * kgCo2PerCm2(die.node);
    }
    return CarbonMass::kg(die_kg * (1.0 + package.packaging_overhead));
}

PackageSpec
DieCatalog::bergamo()
{
    return PackageSpec{
        "AMD Bergamo",
        {
            {"Zen 4c CCD", ProcessNode::N5, 0.73, 8},
            {"IO die", ProcessNode::N7, 3.97, 1},
        }};
}

PackageSpec
DieCatalog::genoa()
{
    return PackageSpec{
        "AMD Genoa (80c cloud)",
        {
            {"Zen 4 CCD", ProcessNode::N5, 0.72, 10},
            {"IO die", ProcessNode::N7, 3.97, 1},
        }};
}

PackageSpec
DieCatalog::ddr5Dimm64()
{
    // 64 GB = 32 x 16 Gb dies at ~0.68 cm^2 each.
    return PackageSpec{
        "64 GB DDR5 RDIMM",
        {
            {"16 Gb DRAM die", ProcessNode::Dram1x, 0.68, 32},
        }};
}

PackageSpec
DieCatalog::ssd2tb()
{
    // 2 TB = 16 x 1 Tb TLC NAND dies plus a controller.
    return PackageSpec{
        "2 TB NVMe SSD",
        {
            {"1 Tb TLC NAND die", ProcessNode::Nand, 1.0, 16},
            {"SSD controller", ProcessNode::N16, 0.5, 1},
        }};
}

} // namespace gsku::carbon
