#include "carbon/model.h"

#include <cmath>

#include "common/contracts.h"
#include "common/error.h"
#include "obs/ledger.h"

namespace gsku::carbon {

CarbonMass
RackFootprint::perCore() const
{
    GSKU_REQUIRE(cores_per_rack > 0, "rack has no cores");
    return total() / static_cast<double>(cores_per_rack);
}

void
RackFootprint::checkInvariants() const
{
    GSKU_INVARIANT(servers_per_rack >= 1, "rack fits no servers");
    GSKU_INVARIANT(cores_per_rack >= servers_per_rack,
                   "rack has fewer cores than servers");
    GSKU_INVARIANT(server_power.asWatts() > 0.0 &&
                       std::isfinite(server_power.asWatts()),
                   "server power must be positive and finite");
    GSKU_INVARIANT(rack_power >= server_power,
                   "rack power below one server's power");
    GSKU_INVARIANT(rack_embodied.asKg() >= 0.0 &&
                       std::isfinite(rack_embodied.asKg()),
                   "rack embodied carbon must be non-negative");
    GSKU_INVARIANT(rack_operational.asKg() >= 0.0 &&
                       std::isfinite(rack_operational.asKg()),
                   "rack operational carbon must be non-negative");
}

void
PerCoreEmissions::checkInvariants() const
{
    GSKU_INVARIANT(operational.asKg() >= 0.0 &&
                       std::isfinite(operational.asKg()),
                   "per-core operational carbon must be non-negative");
    GSKU_INVARIANT(embodied.asKg() >= 0.0 &&
                       std::isfinite(embodied.asKg()),
                   "per-core embodied carbon must be non-negative");
}

CarbonModel::CarbonModel(ModelParams params) : params_(params)
{
    GSKU_REQUIRE(params_.derate > 0.0 && params_.derate <= 1.0,
                 "derate factor must be in (0, 1]");
    GSKU_REQUIRE(params_.cpu_vr_loss >= 1.0,
                 "VR loss factor must be >= 1");
    GSKU_REQUIRE(params_.lifetime.asHours() > 0.0,
                 "lifetime must be positive");
    GSKU_REQUIRE(params_.pue >= 1.0, "PUE must be >= 1");
    GSKU_REQUIRE(params_.rack_space_u > 0, "rack space must be positive");
    GSKU_REQUIRE(
        params_.rack_power_capacity > params_.rack_misc_power,
        "rack power capacity must exceed the empty rack's own power");
}

Power
CarbonModel::slotPower(const ComponentSlot &slot) const
{
    const Component &c = slot.component;
    const double derate =
        c.hasDerateOverride() ? c.derate_override : params_.derate;
    const double vr =
        c.kind == ComponentKind::Cpu ? params_.cpu_vr_loss : 1.0;
    return slotTdp(slot) * derate * vr;
}

Power
CarbonModel::serverPower(const ServerSku &sku) const
{
    Power total;
    for (const auto &slot : sku.slots) {
        total += slotPower(slot);
    }
    return total;
}

CarbonMass
CarbonModel::serverEmbodied(const ServerSku &sku) const
{
    CarbonMass total;
    for (const auto &slot : sku.slots) {
        total += slotEmbodied(slot);
    }
    GSKU_ENSURE(total.asKg() >= 0.0,
                "server embodied carbon must be non-negative");
    return total;
}

CarbonMass
CarbonModel::serverOperational(const ServerSku &sku) const
{
    const CarbonMass op =
        serverPower(sku) * params_.lifetime * params_.carbon_intensity;
    GSKU_ENSURE(op.asKg() >= 0.0,
                "server operational carbon must be non-negative");
    return op;
}

PowerBreakdown
CarbonModel::serverPowerByKind(const ServerSku &sku) const
{
    PowerBreakdown out;
    for (const auto &slot : sku.slots) {
        out[slot.component.kind] += slotPower(slot);
    }
    if (contracts::auditEnabled()) {
        Power sum;
        for (const auto &[kind, p] : out) {
            sum += p;
        }
        GSKU_AUDIT(std::abs(sum.asWatts() -
                            serverPower(sku).asWatts()) < 1e-6,
                   "per-kind power split must sum to total server power");
    }
    return out;
}

CarbonBreakdown
CarbonModel::serverEmbodiedByKind(const ServerSku &sku) const
{
    CarbonBreakdown out;
    for (const auto &slot : sku.slots) {
        out[slot.component.kind] += slotEmbodied(slot);
    }
    if (contracts::auditEnabled()) {
        CarbonMass sum;
        for (const auto &[kind, kg] : out) {
            sum += kg;
        }
        GSKU_AUDIT(std::abs(sum.asKg() - serverEmbodied(sku).asKg()) < 1e-6,
                   "per-kind embodied split must sum to server embodied");
    }
    return out;
}

RackFootprint
CarbonModel::rackFootprint(const ServerSku &sku) const
{
    sku.validate();
    RackFootprint fp;
    fp.server_power = serverPower(sku);
    GSKU_REQUIRE(fp.server_power.asWatts() > 0.0, "server draws no power");

    const double budget =
        (params_.rack_power_capacity - params_.rack_misc_power).asWatts();
    const int by_power =
        static_cast<int>(std::floor(budget / fp.server_power.asWatts()));
    const int by_space = params_.rack_space_u / sku.form_factor_u;
    GSKU_REQUIRE(by_power >= 1 && by_space >= 1,
                 "rack cannot host a single server of SKU " + sku.name);

    fp.servers_per_rack = std::min(by_power, by_space);
    fp.space_constrained = by_space <= by_power;
    fp.cores_per_rack = fp.servers_per_rack * sku.cores;

    const double n = static_cast<double>(fp.servers_per_rack);
    fp.rack_power = n * fp.server_power + params_.rack_misc_power;
    fp.rack_embodied =
        n * serverEmbodied(sku) + params_.rack_misc_embodied;
    fp.rack_operational =
        fp.rack_power * params_.lifetime * params_.carbon_intensity;
    fp.checkInvariants();
    GSKU_ENSURE(fp.rack_power <= params_.rack_power_capacity,
                "rack fit exceeds the rack power cap");
    return fp;
}

PerCoreEmissions
CarbonModel::perCore(const ServerSku &sku) const
{
    return perCore(sku, params_.carbon_intensity);
}

PerCoreEmissions
CarbonModel::perCore(const ServerSku &sku, CarbonIntensity ci) const
{
    GSKU_REQUIRE(ci.asKgPerKwh() >= 0.0,
                 "carbon intensity must be non-negative");
    const RackFootprint fp = rackFootprint(sku);
    const double cores = static_cast<double>(fp.cores_per_rack);

    PerCoreEmissions out;
    // DC operational = rack power scaled by PUE (cooling, distribution).
    out.operational =
        (fp.rack_power * params_.lifetime * ci) * params_.pue / cores;
    // DC embodied = rack embodied plus the per-rack share of DC
    // infrastructure embodied carbon amortized over one server lifetime.
    out.embodied = (fp.rack_embodied + params_.dc_embodied_per_rack) / cores;
    out.checkInvariants();
    if (obs::ledgerEnabled()) {
        ledgerPerCore(sku, ci);
    }
    return out;
}

PerCoreAttribution
CarbonModel::attributePerCore(const ServerSku &sku, CarbonIntensity ci) const
{
    const RackFootprint fp = rackFootprint(sku);
    const double n = static_cast<double>(fp.servers_per_rack);
    const double cores = static_cast<double>(fp.cores_per_rack);

    PerCoreAttribution out;
    out.per_core.operational =
        (fp.rack_power * params_.lifetime * ci) * params_.pue / cores;
    out.per_core.embodied =
        (fp.rack_embodied + params_.dc_embodied_per_rack) / cores;

    // Per-kind leaves: each kind's share of the n servers' power and
    // embodied carbon, amortized exactly like the headline number.
    const PowerBreakdown power = serverPowerByKind(sku);
    const CarbonBreakdown embodied = serverEmbodiedByKind(sku);
    for (const auto &[kind, kind_power] : power) {
        PerCoreTerm term;
        term.component = toString(kind);
        term.operational =
            (n * kind_power * params_.lifetime * ci) * params_.pue /
            cores;
        const auto emb = embodied.find(kind);
        if (emb != embodied.end()) {
            term.embodied = n * emb->second / cores;
        }
        out.terms.push_back(std::move(term));
    }
    for (const auto &[kind, kind_embodied] : embodied) {
        if (power.find(kind) != power.end()) {
            continue;       // Already covered above.
        }
        PerCoreTerm term;
        term.component = toString(kind);
        term.embodied = n * kind_embodied / cores;
        out.terms.push_back(std::move(term));
    }

    // Infrastructure leaves: the empty rack's own draw and embodied
    // carbon, and the per-rack DC embodied share.
    PerCoreTerm rack_misc;
    rack_misc.component = "rack_misc";
    rack_misc.operational =
        (params_.rack_misc_power * params_.lifetime * ci) * params_.pue /
        cores;
    rack_misc.embodied = params_.rack_misc_embodied / cores;
    out.terms.push_back(std::move(rack_misc));

    PerCoreTerm dc_infra;
    dc_infra.component = "dc_infra";
    dc_infra.embodied = params_.dc_embodied_per_rack / cores;
    out.terms.push_back(std::move(dc_infra));

    CarbonMass op_sum;
    CarbonMass emb_sum;
    for (const PerCoreTerm &term : out.terms) {
        op_sum += term.operational;
        emb_sum += term.embodied;
    }
    GSKU_ENSURE(
        std::abs(op_sum.asKg() - out.per_core.operational.asKg()) < 1e-9 &&
            std::abs(emb_sum.asKg() - out.per_core.embodied.asKg()) < 1e-9,
        "per-core attribution leaves must sum to the headline emissions");
    return out;
}

void
CarbonModel::ledgerPerCore(const ServerSku &sku, CarbonIntensity ci) const
{
    const PerCoreAttribution attribution = attributePerCore(sku, ci);
    const RackFootprint fp = rackFootprint(sku);
    obs::LedgerEntry(obs::LedgerEvent::CarbonPerCore)
        .field("sku", sku.name)
        .field("ci_kg_per_kwh", ci.asKgPerKwh())
        .field("operational_kg", attribution.per_core.operational.asKg())
        .field("embodied_kg", attribution.per_core.embodied.asKg())
        .field("total_kg", attribution.per_core.total().asKg())
        .field("servers_per_rack", fp.servers_per_rack)
        .field("cores_per_rack", fp.cores_per_rack)
        .field("pue", params_.pue)
        .field("lifetime_h", params_.lifetime.asHours());
    for (const PerCoreTerm &term : attribution.terms) {
        obs::LedgerEntry(obs::LedgerEvent::CarbonComponent)
            .field("sku", sku.name)
            .field("component", term.component)
            .field("ci_kg_per_kwh", ci.asKgPerKwh())
            .field("operational_kg", term.operational.asKg())
            .field("embodied_kg", term.embodied.asKg());
    }
}

SavingsRow
CarbonModel::savingsVs(const ServerSku &baseline, const ServerSku &sku) const
{
    const PerCoreEmissions base = perCore(baseline);
    const PerCoreEmissions mine = perCore(sku);
    GSKU_ASSERT(base.operational.asKg() > 0.0 && base.embodied.asKg() > 0.0,
                "baseline emissions must be positive");

    SavingsRow row;
    row.sku_name = sku.name;
    row.per_core = mine;
    row.operational_savings = 1.0 - mine.operational / base.operational;
    row.embodied_savings = 1.0 - mine.embodied / base.embodied;
    row.total_savings = 1.0 - mine.total() / base.total();
    return row;
}

std::vector<SavingsRow>
CarbonModel::savingsTable(const std::vector<ServerSku> &skus) const
{
    GSKU_REQUIRE(!skus.empty(), "savingsTable needs at least the baseline");
    std::vector<SavingsRow> rows;
    rows.reserve(skus.size());
    for (const auto &sku : skus) {
        rows.push_back(savingsVs(skus.front(), sku));
    }
    return rows;
}

} // namespace gsku::carbon
