/**
 * @file
 * Bottom-up embodied-carbon estimation from silicon area (§II: "we
 * estimate raw materials from vendor manifests, measure devices'
 * silicon area, and use averaged emissions for manufacturing processes
 * reported in industry datasets such as IMEC" — the ACT-style [64]
 * methodology). The catalog's per-component kgCO2e values are top-down
 * numbers from Appendix A; this estimator derives them bottom-up, so
 * the two can be cross-checked and new components can be priced when no
 * published figure exists.
 */
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace gsku::carbon {

/** Manufacturing process nodes with distinct per-area footprints. */
enum class ProcessNode
{
    N5,         ///< 5 nm-class logic (Zen 4/4c compute dies).
    N7,         ///< 7 nm-class logic (Zen 2/3 dies, IO dies).
    N16,        ///< 16 nm-class logic (controllers, NICs).
    Dram1x,     ///< 1x-nm DRAM process.
    Nand,       ///< 3D NAND flash.
};

/**
 * Per-area manufacturing emissions (kgCO2e per cm^2 of good die),
 * IMEC/ACT-style industry averages including yield. Values are
 * best-effort public estimates; see docs/calibration.md.
 */
double kgCo2PerCm2(ProcessNode node); // lint-ok: raw-double-units kg/cm^2 has no strong type; internal ratio

/** One die (or die type) inside a package. */
struct DieSpec
{
    std::string name;
    ProcessNode node = ProcessNode::N7;
    double area_cm2 = 0.0;
    int count = 1;
};

/** A packaged device to estimate. */
struct PackageSpec
{
    std::string name;
    std::vector<DieSpec> dies;

    /** Substrate/assembly/test overhead as a fraction of die carbon. */
    double packaging_overhead = 0.15;
};

/** Bottom-up embodied estimate for a package. */
CarbonMass estimateEmbodied(const PackageSpec &package);

/** Published die configurations of the catalog CPUs, for cross-checks. */
class DieCatalog
{
  public:
    /** Bergamo: 8 Zen 4c CCDs (~73 mm^2) + 1 IO die (~397 mm^2). */
    static PackageSpec bergamo();

    /** Genoa-class 80-core cloud part: 10 Zen 4 CCDs + IO die. */
    static PackageSpec genoa();

    /** A 64 GB DDR5 RDIMM: 2x-nm DRAM dies totaling ~10.9 cm^2. */
    static PackageSpec ddr5Dimm64();

    /** A 2 TB TLC NVMe SSD: NAND stack ~19 cm^2 + controller. */
    static PackageSpec ssd2tb();
};

} // namespace gsku::carbon
