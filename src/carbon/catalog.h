/**
 * @file
 * Open-source carbon data for server components (paper Appendix A,
 * Tables V and VI) plus the calibrated best-effort values this
 * reproduction adds for parts the appendix omits (the Genoa baseline CPU,
 * server miscellany, old-generation CPUs). Every constant is documented
 * with its provenance; see DESIGN.md §3 and EXPERIMENTS.md for the
 * paper-vs-measured comparison these inputs produce.
 */
#pragma once

#include "carbon/component.h"
#include "common/units.h"

namespace gsku::carbon {

/**
 * Factory for the component instances used by the standard SKUs.
 * All values are per the open dataset in Appendix A Table V unless the
 * member comment says otherwise.
 */
class Catalog
{
  public:
    // ----- CPUs -------------------------------------------------------
    /** AMD Bergamo, 128 cores: 400 W, 28.3 kgCO2e (Table V). */
    static Component bergamoCpu();

    /**
     * AMD Genoa baseline (custom 80-core cloud part): 320 W TDP within
     * the 300-350 W range of Table I; 30 kgCO2e embodied estimated from
     * die area similar to Bergamo (calibrated; see DESIGN.md).
     */
    static Component genoaCpu();

    /** AMD Milan (Gen2, 64 cores): 280 W (Table I); 24 kg estimated. */
    static Component milanCpu();

    /** AMD Rome (Gen1, 64 cores): 240 W (Table I); 22 kg estimated. */
    static Component romeCpu();

    // ----- Memory -----------------------------------------------------
    /** New DDR5 DIMM: 0.37 W/GB, 1.65 kgCO2e/GB (Table V). */
    static Component ddr5Dimm(double capacity_gb);

    /**
     * Reused DDR4 DIMM attached via CXL: 0 kg embodied (second life);
     * 0.46 W/GB operational — higher than DDR5 per GB because old DIMMs
     * are lower density (§III "at the cost of higher operational
     * emissions ... old DIMMs' lower density").
     */
    static Component reusedDdr4Dimm(double capacity_gb);

    // ----- Storage ----------------------------------------------------
    /** New E1.S NVMe SSD: 5.6 W/TB, 17.3 kgCO2e/TB (Table V). */
    static Component newSsd(double capacity_tb);

    /**
     * Reused m.2 SSD (1 TB class): 0 kg embodied; 8 W per drive —
     * old drives burn nearly as much power as new ones at a fraction of
     * the capacity (§VI "reused SSDs are less energy efficient").
     */
    static Component reusedSsd(double capacity_tb);

    // ----- Paper worked-example variants (§V / Table V verbatim) -------
    /**
     * Reused DDR4 exactly as Table V lists it (0.37 W/GB, 0 kg).
     * Used only to reproduce the §V worked example; the standard SKUs use
     * reusedDdr4Dimm() whose 0.46 W/GB reproduces Table VIII's
     * operational-emissions ordering (reuse costs operational carbon).
     */
    static Component paperDdr4Dimm(double capacity_gb);

    /** CXL controller with the model-wide derate, as the §V example. */
    static Component paperCxlController();

    // ----- Other ------------------------------------------------------
    /** CXL memory controller card: 5.8 W, 2.5 kgCO2e (Table V). */
    static Component cxlController();

    /**
     * Server miscellany — NIC, fans, BMC, mainboard, PSU, chassis —
     * aggregated: 30 W, 90 kgCO2e (best-effort estimate; identical on
     * every SKU so it only dilutes relative savings).
     */
    static Component serverMisc();

    // ----- Second-generation GreenSKU candidates (§III) ----------------
    // "Other GreenSKU designs that reuse NICs or use low-power DRAM may
    // be feasible, but yield low returns today. These designs can help
    // target residual emissions for a potential second-generation
    // GreenSKU." The components below let GSF evaluate exactly that.

    /** Misc without the NIC (15 W, 60 kg), for NIC-reuse variants. */
    static Component serverMiscNoNic();

    /** New 100G NIC broken out of the misc bundle: 15 W, 30 kg. */
    static Component nic();

    /**
     * Reused 40G NIC from a decommissioned server: 0 kg embodied, but
     * 18 W — older SerDes burn more power per bit.
     */
    static Component reusedNic();

    /**
     * Low-power DDR5 (LPDDR5-class) DIMM: 0.25 W/GB operational but
     * 1.85 kgCO2e/GB embodied — newer process and packaging cost
     * embodied carbon up front.
     */
    static Component lpddrDimm(double capacity_gb);

    /**
     * The CXL controller draws near-constant power regardless of load,
     * so it is exempt from TDP derating (derate override = 1.0).
     */
    static constexpr double kCxlDerate = 1.0;
};

/**
 * Model-wide parameters from Appendix A Table VI plus the DC-level
 * overheads this reproduction calibrates (documented per member).
 */
struct ModelParams
{
    /** Average grid carbon intensity of major Azure regions (Table VI). */
    CarbonIntensity carbon_intensity = CarbonIntensity::kgPerKwh(0.1);

    /** Server lifetime: 6 years = 52,560 hours (Table VI). */
    Duration lifetime = Duration::years(6.0);

    /** TDP derating factor at 40% SPEC rate (Table VI). */
    double derate = 0.44;

    /** CPU voltage-regulator loss factor (Table VI): 5% overhead. */
    double cpu_vr_loss = 1.05;

    /** Usable rack space for servers: 42U minus 10U overhead (Table VI). */
    int rack_space_u = 32;

    /** Rack power capacity (Table VI). */
    Power rack_power_capacity = Power::watts(15000.0);

    /** Empty-rack power (power bus, rack controller; Table V "misc"). */
    Power rack_misc_power = Power::watts(500.0);

    /** Empty-rack embodied carbon (Table V "misc"). */
    CarbonMass rack_misc_embodied = CarbonMass::kg(500.0);

    /**
     * Data-center-level embodied overhead amortized per rack over one
     * server lifetime: building shell, cooling plant, power distribution.
     * 8,000 kgCO2e/rack calibrated so that open-data per-core savings
     * match Appendix A Table VIII (see DESIGN.md §5).
     */
    CarbonMass dc_embodied_per_rack = CarbonMass::kg(8000.0);

    /** Power usage effectiveness for DC-level operational emissions. */
    double pue = 1.25;
};

} // namespace gsku::carbon
