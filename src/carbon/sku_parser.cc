#include "carbon/sku_parser.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "carbon/catalog.h"
#include "common/error.h"
#include "common/parse.h"

namespace gsku::carbon {

namespace {

/** A parsed <count>x<size> pair. */
struct CountSize
{
    int count = 0;
    double size = 0.0;
};

CountSize
parseCountSize(const std::string &key, const std::string &value)
{
    const std::size_t x = value.find('x');
    GSKU_REQUIRE(x != std::string::npos && x > 0 && x + 1 < value.size(),
                 "expected <count>x<size> for " + key + ", got '" +
                     value + "'");
    CountSize out;
    out.count = parseInt(value.substr(0, x),
                         ParseContext{"sku spec", 0, key + " count"});
    out.size = parseDouble(value.substr(x + 1),
                           ParseContext{"sku spec", 0, key + " size"});
    GSKU_REQUIRE(out.count > 0, key + " count must be positive");
    GSKU_REQUIRE(out.size > 0.0, key + " size must be positive");
    // Fuzzing-derived sanity bounds: absurd counts/sizes previously
    // parsed fine and overflowed downstream capacity sums to inf.
    GSKU_REQUIRE(out.count <= 4096,
                 key + " count is implausibly large (max 4096)");
    GSKU_REQUIRE(std::isfinite(out.size) && out.size <= 1.0e6,
                 key + " size is implausibly large (max 1e6)");
    return out;
}

struct CpuChoice
{
    Component component;
    int cores;
    Generation generation;
};

CpuChoice
cpuFor(const std::string &name)
{
    if (name == "bergamo") {
        return {Catalog::bergamoCpu(), 128, Generation::GreenSku};
    }
    if (name == "genoa") {
        return {Catalog::genoaCpu(), 80, Generation::Gen3};
    }
    if (name == "milan") {
        return {Catalog::milanCpu(), 64, Generation::Gen2};
    }
    if (name == "rome") {
        return {Catalog::romeCpu(), 64, Generation::Gen1};
    }
    GSKU_REQUIRE(false, "unknown cpu '" + name +
                            "' (expected bergamo|genoa|milan|rome)");
    GSKU_ASSERT(false, "unreachable");
}

} // namespace

ServerSku
parseSku(const std::string &spec)
{
    std::map<std::string, std::string> kv;
    std::istringstream in(spec);
    std::string token;
    while (in >> token) {
        const std::size_t eq = token.find('=');
        GSKU_REQUIRE(eq != std::string::npos && eq > 0,
                     "expected key=value, got '" + token + "'");
        const std::string key = token.substr(0, eq);
        GSKU_REQUIRE(!kv.count(key), "duplicate key '" + key + "'");
        kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
    GSKU_REQUIRE(kv.count("cpu"), "spec must name a cpu");

    static const std::vector<std::string> known = {
        "name", "cpu",        "ddr5", "lpddr", "cxl_ddr4",
        "ssd",  "reused_ssd", "nic",  "u"};
    for (const auto &[key, value] : kv) {
        GSKU_REQUIRE(std::find(known.begin(), known.end(), key) !=
                         known.end(),
                     "unknown key '" + key + "'");
    }

    ServerSku sku;
    sku.name = kv.count("name") ? kv.at("name") : spec;

    const CpuChoice cpu = cpuFor(kv.at("cpu"));
    sku.generation = cpu.generation;
    sku.cores = cpu.cores;
    sku.slots.push_back({cpu.component, 1});

    double local_gb = 0.0;
    double cxl_gb = 0.0;
    double storage_tb = 0.0;

    if (kv.count("ddr5")) {
        const CountSize cs = parseCountSize("ddr5", kv.at("ddr5"));
        sku.slots.push_back({Catalog::ddr5Dimm(cs.size), cs.count});
        local_gb += cs.count * cs.size;
    }
    if (kv.count("lpddr")) {
        const CountSize cs = parseCountSize("lpddr", kv.at("lpddr"));
        sku.slots.push_back({Catalog::lpddrDimm(cs.size), cs.count});
        local_gb += cs.count * cs.size;
    }
    if (kv.count("cxl_ddr4")) {
        const CountSize cs =
            parseCountSize("cxl_ddr4", kv.at("cxl_ddr4"));
        sku.slots.push_back({Catalog::reusedDdr4Dimm(cs.size), cs.count});
        // One CXL controller per four DDR4 DIMMs (§III prototype).
        sku.slots.push_back(
            {Catalog::cxlController(), (cs.count + 3) / 4});
        cxl_gb += cs.count * cs.size;
    }
    if (kv.count("ssd")) {
        const CountSize cs = parseCountSize("ssd", kv.at("ssd"));
        sku.slots.push_back({Catalog::newSsd(cs.size), cs.count});
        storage_tb += cs.count * cs.size;
    }
    if (kv.count("reused_ssd")) {
        const CountSize cs =
            parseCountSize("reused_ssd", kv.at("reused_ssd"));
        sku.slots.push_back({Catalog::reusedSsd(cs.size), cs.count});
        storage_tb += cs.count * cs.size;
    }

    const std::string nic = kv.count("nic") ? kv.at("nic") : "bundled";
    if (nic == "bundled") {
        sku.slots.push_back({Catalog::serverMisc(), 1});
    } else if (nic == "new") {
        sku.slots.push_back({Catalog::serverMiscNoNic(), 1});
        sku.slots.push_back({Catalog::nic(), 1});
    } else if (nic == "reused") {
        sku.slots.push_back({Catalog::serverMiscNoNic(), 1});
        sku.slots.push_back({Catalog::reusedNic(), 1});
    } else {
        GSKU_REQUIRE(false, "unknown nic '" + nic +
                                "' (expected new|reused|bundled)");
    }

    if (kv.count("u")) {
        sku.form_factor_u =
            parseInt(kv.at("u"), ParseContext{"sku spec", 0, "u"});
        // A server taller than the rack would make the rack-fit model
        // report zero servers per rack; reject it as caller error here.
        GSKU_REQUIRE(sku.form_factor_u >= 1 && sku.form_factor_u <= 48,
                     "u must be in [1, 48], got '" + kv.at("u") + "'");
    }

    sku.local_memory = MemCapacity::gb(local_gb);
    sku.cxl_memory = MemCapacity::gb(cxl_gb);
    sku.storage = StorageCapacity::tb(storage_tb);
    sku.validate();
    return sku;
}

std::string
formatSku(const ServerSku &sku)
{
    std::ostringstream out;
    // Names are free-form; sanitize characters the grammar reserves.
    std::string name = sku.name;
    for (char &c : name) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            c = '_';
        } else if (c == '=') {
            c = ':';
        }
    }
    out << "name=" << name;

    auto emit_count_size = [&](const char *key, const ComponentSlot &slot,
                               double per_unit) {
        const double size =
            std::round(slot.component.tdp.asWatts() / per_unit * 100.0) /
            100.0;
        out << ' ' << key << '=' << slot.count << 'x' << size;
    };

    bool saw_nic = false;
    bool saw_misc_no_nic = false;
    for (const auto &slot : sku.slots) {
        const Component &c = slot.component;
        if (c.kind == ComponentKind::Cpu) {
            std::string cpu = "genoa";
            if (c.name.find("Bergamo") != std::string::npos) {
                cpu = "bergamo";
            } else if (c.name.find("Milan") != std::string::npos) {
                cpu = "milan";
            } else if (c.name.find("Rome") != std::string::npos) {
                cpu = "rome";
            }
            out << " cpu=" << cpu;
        } else if (c.name == "DDR5 DIMM") {
            emit_count_size("ddr5", slot, 0.37);
        } else if (c.name == "LPDDR5 DIMM") {
            emit_count_size("lpddr", slot, 0.25);
        } else if (c.name == "Reused DDR4 DIMM (CXL)") {
            emit_count_size("cxl_ddr4", slot, 0.46);
        } else if (c.name == "E1.S NVMe SSD") {
            emit_count_size("ssd", slot, 5.6);
        } else if (c.name == "Reused m.2 SSD") {
            out << " reused_ssd=" << slot.count << "x1";
        } else if (c.kind == ComponentKind::Nic) {
            saw_nic = true;
            out << " nic=" << (c.reused ? "reused" : "new");
        } else if (c.name == "Fans/board/PSU") {
            saw_misc_no_nic = true;
        }
        // CXL controllers and the bundled misc are implied.
    }
    GSKU_REQUIRE(saw_nic == saw_misc_no_nic,
                 "cannot format a SKU with inconsistent NIC/misc slots");
    if (sku.form_factor_u != 2) {
        out << " u=" << sku.form_factor_u;
    }
    return out.str();
}

} // namespace gsku::carbon
