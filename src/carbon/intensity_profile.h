/**
 * @file
 * Time-varying grid carbon intensity and temporal workload shifting.
 *
 * The paper's related work (§IX) notes that spatial/temporal shifting
 * of flexible workloads toward renewable availability "can apply on top
 * of GreenSKUs". This module provides the substrate to quantify that
 * composition: a diurnal carbon-intensity profile (solar-heavy grids
 * are cleanest mid-day) and a shifter that moves deferrable work into
 * the cleanest hours.
 */
#pragma once

#include <vector>

#include "common/units.h"

namespace gsku::carbon {

/** A sinusoidal 24-hour carbon-intensity profile. */
class IntensityProfile
{
  public:
    /**
     * @param mean daily mean intensity
     * @param swing_fraction peak-to-mean swing (0 = flat grid);
     *        intensity ranges mean*(1 +/- swing_fraction)
     * @param cleanest_hour hour of day with the lowest intensity
     */
    IntensityProfile(CarbonIntensity mean, double swing_fraction,
                     double cleanest_hour);

    /** A solar-heavy grid: cleanest at 13:00, 40% swing. */
    static IntensityProfile solarHeavy(CarbonIntensity mean);

    /** A flat grid (no shifting opportunity). */
    static IntensityProfile flat(CarbonIntensity mean);

    /** Intensity at an hour of day in [0, 24]. */
    CarbonIntensity at(double hour) const;

    /** Mean over the day (equals the constructor's mean). */
    CarbonIntensity dailyMean() const { return mean_; }

    /** Mean intensity over the @p window_hours cleanest hours. */
    CarbonIntensity cleanestWindowMean(double window_hours) const;

  private:
    CarbonIntensity mean_;
    double swing_fraction_;
    double cleanest_hour_;
};

/**
 * Temporal shifting of deferrable work (batch/DevOps-class jobs):
 * operational emissions when a fraction of daily compute runs in the
 * cleanest window instead of uniformly across the day.
 */
class TemporalShifter
{
  public:
    /**
     * Fractional reduction in *operational* emissions from shifting
     * @p deferrable_fraction of the work into the cleanest
     * @p window_hours, the rest staying uniform.
     */
    static double operationalSavings(const IntensityProfile &profile,
                                     double deferrable_fraction,
                                     double window_hours);

    /**
     * Fractional reduction in *total* emissions given the operational
     * share of the deployment's footprint (shifting cannot touch
     * embodied carbon — the reason it composes with, rather than
     * replaces, GreenSKU design).
     */
    static double totalSavings(const IntensityProfile &profile,
                               double deferrable_fraction,
                               double window_hours,
                               double operational_share);
};

} // namespace gsku::carbon
