#include "carbon/datacenter.h"

#include <cmath>

#include "carbon/catalog.h"
#include "common/error.h"

namespace gsku::carbon {

namespace {

/** Nearline HDD for storage servers: 7 W spinning, 30 kg embodied. */
Component
hdd()
{
    return Component{"Nearline HDD", ComponentKind::Hdd, Power::watts(7.0),
                     CarbonMass::kg(30.0)};
}

/** Switching ASIC complex: near-constant 250 W, 300 kg embodied. */
Component
switchAsic()
{
    Component c{"Switch ASIC/PHY", ComponentKind::Nic, Power::watts(250.0),
                CarbonMass::kg(300.0)};
    c.derate_override = 1.0;
    return c;
}

} // namespace

ServerSku
FleetSkus::storageServer()
{
    ServerSku sku;
    sku.name = "Storage server";
    sku.generation = Generation::Gen1;
    sku.cores = 64;
    sku.form_factor_u = 4;
    sku.local_memory = MemCapacity::gb(256.0);
    sku.storage = StorageCapacity::tb(60 * 16.0);
    sku.slots = {
        {Catalog::romeCpu(), 1},
        {Catalog::ddr5Dimm(32.0), 8},
        {hdd(), 60},
        {Catalog::serverMisc(), 1},
    };
    sku.validate();
    return sku;
}

ServerSku
FleetSkus::networkServer()
{
    ServerSku sku;
    sku.name = "Network server";
    sku.generation = Generation::Gen1;
    sku.cores = 8;
    sku.form_factor_u = 2;
    sku.local_memory = MemCapacity::gb(32.0);
    sku.storage = StorageCapacity::tb(0.5);
    sku.slots = {
        // A small control CPU plus the always-on switching complex.
        {Component{"Control CPU", ComponentKind::Cpu, Power::watts(50.0),
                   CarbonMass::kg(5.0)},
         1},
        {switchAsic(), 1},
        {Catalog::serverMisc(), 1},
    };
    sku.validate();
    return sku;
}

ServerSku
FleetSkus::fleetComputeServer()
{
    ServerSku sku = StandardSkus::baseline();
    sku.name = "Fleet compute server";
    // General-purpose fleet compute servers carry the larger SSD fit
    // (6 x 8 TB); this drives the SSD share of Fig. 1.
    sku.storage = StorageCapacity::tb(6 * 8.0);
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Ssd) {
            slot = {Catalog::newSsd(8.0), 6};
        }
    }
    sku.validate();
    return sku;
}

CarbonIntensity
FleetComposition::effectiveIntensity() const
{
    GSKU_REQUIRE(renewable_fraction >= 0.0 && renewable_fraction <= 1.0,
                 "renewable fraction must be in [0, 1]");
    GSKU_REQUIRE(renewable_matching_residual >= 0.0 &&
                     renewable_matching_residual <= 1.0,
                 "matching residual must be in [0, 1]");
    // Only (1 - residual) of purchased renewables displaces grid energy
    // hour-by-hour; the rest of consumption stays at grid intensity.
    const double grid_share =
        1.0 - renewable_fraction * (1.0 - renewable_matching_residual);
    return grid_intensity * grid_share;
}

DataCenterModel::DataCenterModel(ModelParams params) : params_(params)
{
}

DcBreakdown
DataCenterModel::breakdown(const FleetComposition &fleet) const
{
    GSKU_REQUIRE(fleet.compute_servers > 0, "fleet needs compute servers");
    GSKU_REQUIRE(fleet.storage_servers >= 0 && fleet.network_servers >= 0,
                 "server counts must be non-negative");

    ModelParams params = params_;
    params.carbon_intensity = fleet.effectiveIntensity();
    const CarbonModel model(params);

    struct Category
    {
        std::string name;
        ServerSku sku;
        int count;
    };
    const std::vector<Category> categories = {
        {"compute", fleet.compute_sku, fleet.compute_servers},
        {"storage", FleetSkus::storageServer(), fleet.storage_servers},
        {"network", FleetSkus::networkServer(), fleet.network_servers},
    };

    DcBreakdown out;
    const Duration life = params.lifetime;
    const CarbonIntensity ci = params.carbon_intensity;

    std::map<std::string, double> op_kg;
    std::map<std::string, double> emb_kg;
    double building_emb = 0.0;
    double it_power_w = 0.0;
    double compute_op = 0.0;
    double compute_emb = 0.0;

    for (const auto &cat : categories) {
        if (cat.count == 0) {
            continue;
        }
        const RackFootprint rack = model.rackFootprint(cat.sku);
        const double racks = std::ceil(
            static_cast<double>(cat.count) /
            static_cast<double>(rack.servers_per_rack));
        const Power power =
            model.serverPower(cat.sku) * static_cast<double>(cat.count) +
            params.rack_misc_power * racks;
        const double op = (power * life * ci).asKg();
        const double emb =
            (model.serverEmbodied(cat.sku) * static_cast<double>(cat.count) +
             params.rack_misc_embodied * racks)
                .asKg();
        op_kg[cat.name] = op;
        emb_kg[cat.name] = emb;
        building_emb += params.dc_embodied_per_rack.asKg() * racks;
        it_power_w += power.asWatts();
        if (cat.name == "compute") {
            // Attribute the compute share of the PUE overhead to compute
            // when computing its share of total DC emissions.
            compute_op = op * params.pue;
            compute_emb = emb;
        }
    }

    // PUE overhead: cooling and power distribution energy.
    const double cooling_op =
        (Power::watts(it_power_w) * life * ci).asKg() * (params.pue - 1.0);

    double total_op = cooling_op;
    for (const auto &[name, kg] : op_kg) {
        total_op += kg;
    }
    double total_emb = building_emb;
    for (const auto &[name, kg] : emb_kg) {
        total_emb += kg;
    }

    out.total_operational = CarbonMass::kg(total_op);
    out.total_embodied = CarbonMass::kg(total_emb);

    for (const auto &[name, kg] : op_kg) {
        out.operational_by_category[name] = kg / total_op;
    }
    out.operational_by_category["cooling+power"] = cooling_op / total_op;
    for (const auto &[name, kg] : emb_kg) {
        out.embodied_by_category[name] = kg / total_emb;
    }
    out.embodied_by_category["building+non-IT"] = building_emb / total_emb;

    // Compute-server emissions split by component kind: lifetime
    // operational (with the compute share of PUE) plus embodied, plus a
    // per-server slice of rack and building overheads under "Misc".
    {
        const ServerSku &sku = fleet.compute_sku;
        const RackFootprint rack = model.rackFootprint(sku);
        const double kg_per_w =
            (Power::watts(1.0) * life * ci).asKg() * params.pue;
        const auto power_by_kind = model.serverPowerByKind(sku);
        const auto emb_by_kind = model.serverEmbodiedByKind(sku);

        std::map<std::string, double> combined;
        double server_total = 0.0;
        for (const auto &[kind, watts] : power_by_kind) {
            combined[toString(kind)] += watts.asWatts() * kg_per_w;
        }
        for (const auto &[kind, kg] : emb_by_kind) {
            combined[toString(kind)] += kg.asKg();
        }
        const double per_server_overhead =
            (params.rack_misc_power.asWatts() * kg_per_w +
             params.rack_misc_embodied.asKg() +
             params.dc_embodied_per_rack.asKg()) /
            static_cast<double>(rack.servers_per_rack);
        combined[toString(ComponentKind::Misc)] += per_server_overhead;
        for (const auto &[name, kg] : combined) {
            server_total += kg;
        }
        for (const auto &[name, kg] : combined) {
            out.compute_by_component[name] = kg / server_total;
        }
    }

    const double grand_total = total_op + total_emb;
    out.operational_share_of_total = total_op / grand_total;
    out.compute_share_of_total = (compute_op + compute_emb) / grand_total;
    return out;
}

double
DataCenterModel::dcSavings(const FleetComposition &fleet,
                           double compute_cluster_savings) const
{
    GSKU_REQUIRE(compute_cluster_savings <= 1.0,
                 "savings fraction cannot exceed 1");
    const DcBreakdown bd = breakdown(fleet);
    return compute_cluster_savings * bd.compute_share_of_total;
}

} // namespace gsku::carbon
