/**
 * @file
 * Compact text specs for server SKUs, so tools and scripts can explore
 * designs without writing C++ (the §VIII design-space loop from a shell).
 *
 * Grammar (whitespace-separated key=value tokens, one SKU per spec):
 *
 *   name=<string>              optional; defaults to the spec itself
 *   cpu=<bergamo|genoa|milan|rome>
 *   ddr5=<count>x<gb>          new DDR5 DIMMs
 *   lpddr=<count>x<gb>         low-power DRAM DIMMs
 *   cxl_ddr4=<count>x<gb>      reused DDR4 via CXL (4 DIMMs/controller)
 *   ssd=<count>x<tb>           new E1.S SSDs
 *   reused_ssd=<count>x<tb>    reused m.2 SSDs
 *   nic=<new|reused|bundled>   optional; default bundled (in misc)
 *   u=<units>                  optional form factor; default 2
 *
 * Example:
 *   "cpu=bergamo ddr5=12x64 cxl_ddr4=8x32 ssd=2x4 reused_ssd=12x1"
 * is exactly GreenSKU-Full.
 */
#pragma once

#include <string>

#include "carbon/sku.h"

namespace gsku::carbon {

/** Parses a SKU spec string; throws UserError with a precise message on
 *  any malformed token, unknown key, or inconsistent combination. */
ServerSku parseSku(const std::string &spec);

/** Renders a SKU back into a spec string parseable by parseSku().
 *  Round-trips every SKU built from catalog components. */
std::string formatSku(const ServerSku &sku);

} // namespace gsku::carbon
