/**
 * @file
 * The GSF carbon model component (§IV-A, implemented as in §V).
 *
 * Aggregates embodied and operational emissions from the server level
 * (Eq. 1), through the rack level (Eqs. 2 and 3), to the data-center
 * level, and emits the CO2e-per-core metric every other GSF component
 * consumes. The §V worked example is reproduced exactly by
 * rackFootprint(); Table IV/VIII uses perCore(), which additionally
 * amortizes DC-level embodied overheads and applies PUE.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "carbon/catalog.h"
#include "carbon/sku.h"
#include "common/units.h"

namespace gsku::carbon {

/** Per-component-kind split of a server's derated power draw. */
using PowerBreakdown = std::map<ComponentKind, Power>;

/** Per-component-kind split of a server's embodied carbon. */
using CarbonBreakdown = std::map<ComponentKind, CarbonMass>;

/** Rack-level aggregate (Eqs. 2 and 3 plus lifetime operational). */
struct RackFootprint
{
    int servers_per_rack = 0;       ///< N_s.
    bool space_constrained = false; ///< True when space, not power, binds.
    Power server_power;             ///< P_s (Eq. 1).
    Power rack_power;               ///< P_r (Eq. 2).
    CarbonMass rack_embodied;       ///< E_emb,r (Eq. 3).
    CarbonMass rack_operational;    ///< E_op,r = P_r * L * CI.
    int cores_per_rack = 0;         ///< N_c,r.

    /** Net rack emissions E_r = E_op,r + E_emb,r. */
    CarbonMass total() const { return rack_operational + rack_embodied; }

    /** Rack-level CO2e-per-core (the §V example's 31 kg figure). */
    CarbonMass perCore() const;

    /**
     * Contract check: a well-formed footprint has at least one server,
     * positive power, non-negative carbon masses, and cores consistent
     * with the server count. CarbonModel::rackFootprint() ENSUREs this
     * on every result; throws InternalError on violation.
     */
    void checkInvariants() const;
};

/** The model's headline output: amortized emissions per core. */
struct PerCoreEmissions
{
    CarbonMass operational;
    CarbonMass embodied;

    CarbonMass total() const { return operational + embodied; }

    /** Contract check: emissions are finite and non-negative; throws
     *  InternalError on violation (a sign error in the model). */
    void checkInvariants() const;
};

/**
 * One leaf of the per-core carbon attribution: a component kind, or one
 * of the synthetic infrastructure leaves "rack_misc" (the empty rack's
 * own power and embodied carbon) and "dc_infra" (the per-rack share of
 * data-center embodied carbon). Leaves are exact: their operational and
 * embodied terms sum to PerCoreEmissions within float reassociation
 * error (attributePerCore() ENSUREs 1e-9).
 */
struct PerCoreTerm
{
    std::string component;
    CarbonMass operational;
    CarbonMass embodied;

    CarbonMass total() const { return operational + embodied; }
};

/** Full per-core attribution: the headline number plus its leaves. */
struct PerCoreAttribution
{
    PerCoreEmissions per_core;
    std::vector<PerCoreTerm> terms;
};

/** One row of Table IV / Table VIII: savings relative to the baseline. */
struct SavingsRow
{
    std::string sku_name;
    PerCoreEmissions per_core;
    double operational_savings = 0.0;   ///< Fraction, e.g. 0.16.
    double embodied_savings = 0.0;
    double total_savings = 0.0;
};

/**
 * Carbon model: stateless given its parameters; all queries are const.
 */
class CarbonModel
{
  public:
    explicit CarbonModel(ModelParams params = ModelParams{});

    const ModelParams &params() const { return params_; }

    /**
     * Average server power P_s per Eq. 1: sum of component TDPs scaled
     * by the derate factor (or a component's override), with the CPU's
     * voltage-regulator loss applied as in the §V example.
     */
    Power serverPower(const ServerSku &sku) const;

    /** Server embodied emissions E_emb,s (reused components count 0). */
    CarbonMass serverEmbodied(const ServerSku &sku) const;

    /** Server lifetime operational emissions at the model's CI (no PUE). */
    CarbonMass serverOperational(const ServerSku &sku) const;

    /** Per-kind split of derated server power. */
    PowerBreakdown serverPowerByKind(const ServerSku &sku) const;

    /** Per-kind split of server embodied carbon. */
    CarbonBreakdown serverEmbodiedByKind(const ServerSku &sku) const;

    /**
     * Rack-level aggregate. N_s = min(floor((P_cap - P_rack_misc)/P_s),
     * floor(space / form factor)) as in the §V example.
     */
    RackFootprint rackFootprint(const ServerSku &sku) const;

    /**
     * DC-amortized per-core emissions: operational includes PUE;
     * embodied includes the per-rack DC infrastructure overhead.
     * This is the CO2e-per-core the adoption component consumes.
     */
    PerCoreEmissions perCore(const ServerSku &sku) const;

    /** perCore() at an explicit carbon intensity (for Fig. 11 sweeps). */
    PerCoreEmissions perCore(const ServerSku &sku, CarbonIntensity ci) const;

    /**
     * perCore() decomposed into per-component leaves (one per component
     * kind, plus "rack_misc" and "dc_infra") whose operational and
     * embodied terms sum back to the headline within 1e-9 kg — the
     * attribution tree behind `gsku_explain --why` and the
     * carbon.per_core / carbon.component ledger events.
     */
    PerCoreAttribution attributePerCore(const ServerSku &sku,
                                        CarbonIntensity ci) const;

    /** One savings row relative to a baseline SKU. */
    SavingsRow savingsVs(const ServerSku &baseline,
                         const ServerSku &sku) const;

    /** Full Table IV/VIII: first row is the baseline (no savings). */
    std::vector<SavingsRow>
    savingsTable(const std::vector<ServerSku> &skus) const;

  private:
    ModelParams params_;

    /** Derated power contribution of one slot. */
    Power slotPower(const ComponentSlot &slot) const;

    /** Record perCore()'s result and its attribution in the decision
     *  ledger (no-op unless the ledger is enabled). */
    void ledgerPerCore(const ServerSku &sku, CarbonIntensity ci) const;
};

} // namespace gsku::carbon
