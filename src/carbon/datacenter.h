/**
 * @file
 * Data-center-level carbon accounting: the Fig. 1 breakdown (operational
 * and embodied emissions by server type and by compute-server component)
 * and the conversion from compute-cluster savings to net data-center
 * savings (the paper's 14% cluster -> 7-8% DC step).
 *
 * The fleet composition substitutes for Azure's proprietary fleet data; it
 * is parameterized so the §II percentages (operational 58% of total,
 * compute 57% of DC emissions, DRAM 35% / SSD 28% / CPU 24% within compute)
 * are reproduced with a plausible fleet, and the 100%-renewable variant
 * follows from the renewable-matching residual.
 */
#pragma once

#include <map>
#include <string>

#include "carbon/model.h"
#include "carbon/sku.h"

namespace gsku::carbon {

/** Non-compute server archetypes needed for the Fig. 1 breakdown. */
class FleetSkus
{
  public:
    /** Storage server: JBOD of HDDs, modest CPU; large embodied. */
    static ServerSku storageServer();

    /** Network server/switch: constant power draw, small embodied. */
    static ServerSku networkServer();

    /**
     * Fleet-representative compute server for the breakdown: the Gen3
     * baseline with the larger SSD fit typical of general-purpose fleets
     * (6 x 4 TB), which drives the SSD share of Fig. 1.
     */
    static ServerSku fleetComputeServer();
};

/** How a data center's servers and energy supply are composed. */
struct FleetComposition
{
    ServerSku compute_sku = FleetSkus::fleetComputeServer();
    int compute_servers = 10000;
    int storage_servers = 5000;
    int network_servers = 1500;

    /** Location-matched renewable energy fraction (0.4-0.8 at Azure). */
    double renewable_fraction = 0.6;

    /**
     * Fraction of consumption that stays grid-supplied even under "100%"
     * renewable purchases, due to hourly-matching shortfall (§VII cites
     * the long tail in generation variance).
     */
    double renewable_matching_residual = 0.03;

    /** Underlying grid carbon intensity before renewable matching. */
    CarbonIntensity grid_intensity = CarbonIntensity::kgPerKwh(0.32);

    /** Effective carbon intensity after renewable matching. */
    CarbonIntensity effectiveIntensity() const;
};

/** Shares in [0,1]; keys are category names (compute/storage/...). */
using CategoryShares = std::map<std::string, double>;

/** The Fig. 1 output plus the §II headline percentages. */
struct DcBreakdown
{
    CarbonMass total_operational;
    CarbonMass total_embodied;

    /** Operational emissions by category (compute/storage/network/
     *  cooling+power, the PUE overhead). Shares sum to 1. */
    CategoryShares operational_by_category;

    /** Embodied emissions by category (compute/storage/network/
     *  building+non-IT). Shares sum to 1. */
    CategoryShares embodied_by_category;

    /** Combined (op+emb) compute-server emissions split by component
     *  kind; the §II DRAM/SSD/CPU percentages. Shares sum to 1. */
    CategoryShares compute_by_component;

    double operational_share_of_total = 0.0;   ///< §II: ~58%.
    double compute_share_of_total = 0.0;       ///< §II: ~57%.

    CarbonMass total() const { return total_operational + total_embodied; }
};

/** Aggregates fleet emissions and derives the Fig. 1 / §II breakdowns. */
class DataCenterModel
{
  public:
    explicit DataCenterModel(ModelParams params = ModelParams{});

    /** Full Fig. 1 breakdown for a fleet. */
    DcBreakdown breakdown(const FleetComposition &fleet) const;

    /**
     * Net DC savings when the compute clusters save
     * @p compute_cluster_savings (fraction): scales by the compute share
     * of total DC emissions (the paper's 14% -> 7% step).
     */
    double dcSavings(const FleetComposition &fleet,
                     double compute_cluster_savings) const;

  private:
    ModelParams params_;
};

} // namespace gsku::carbon
