#include "analyze/taint.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace gsku::analyze {

namespace {

/** Names that look like calls but are control flow, operators, or
 *  type syntax. */
const std::set<std::string, std::less<>> kNotACall = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "decltype", "static_assert", "catch", "new", "delete",
    "throw", "co_return", "co_await", "co_yield", "case", "default",
    "else", "do", "goto", "asm", "not", "and", "or", "operator",
    "noexcept", "requires", "typeid", "defined", "assert",
    "int", "char", "double", "float", "bool", "void", "auto", "long",
    "short", "unsigned", "signed", "const", "constexpr", "typename",
};

/** Seeing one of these between `)` and `{` means the parens belonged
 *  to something that is not a function signature (a template
 *  non-type argument, a macro in a type position, ...). */
const std::set<std::string, std::less<>> kAbortsSignature = {
    "struct", "class", "namespace", "enum", "union", "using",
};

bool
isPunct(const Token *t, std::string_view text)
{
    return t && t->kind == TokenKind::Punct && t->text == text;
}

/** The four token rules whose findings seed taint. */
bool
isDeterminismRule(const std::string &rule)
{
    return rule == "rng-usage" || rule == "timing" ||
           rule == "concurrency" || rule == "checked-parse";
}

} // namespace

std::vector<FunctionDef>
extractFunctions(const SourceFile &file, int fileIndex)
{
    // Code tokens only: comments never define functions, and macro
    // bodies (directive lines) would only confuse brace tracking.
    std::vector<const Token *> code;
    for (const Token &t : file.tokens) {
        if (t.kind == TokenKind::LineComment ||
            t.kind == TokenKind::BlockComment || t.inDirective) {
            continue;
        }
        code.push_back(&t);
    }

    std::vector<FunctionDef> defs;
    struct Open
    {
        FunctionDef def;
        int depthAtOpen;
    };
    std::vector<Open> fnStack;
    int depth = 0;

    auto matchParen = [&](std::size_t open) -> std::size_t {
        // `open` indexes the '('; returns the index of its ')', or
        // code.size() when unmatched.
        int level = 0;
        for (std::size_t k = open; k < code.size(); ++k) {
            if (isPunct(code[k], "("))
                ++level;
            else if (isPunct(code[k], ")") && --level == 0)
                return k;
        }
        return code.size();
    };

    // Scan from just past the ')' of a candidate signature for the
    // body '{'. Returns its index, or code.size() when the candidate
    // is a declaration/call/non-function.
    auto findBody = [&](std::size_t afterParen) -> std::size_t {
        bool inInitList = false;
        std::size_t k = afterParen;
        while (k < code.size()) {
            const Token *t = code[k];
            if (isPunct(t, ";") || isPunct(t, "="))
                return code.size();
            if (isPunct(t, "{")) {
                // In a ctor init list, `name{...}` is a member
                // initializer (follows an identifier or template
                // closer); the body brace follows ')' or '}'.
                const Token *prev = k > 0 ? code[k - 1] : nullptr;
                if (inInitList &&
                    (prev == nullptr ||
                     prev->kind == TokenKind::Identifier ||
                     isPunct(prev, ">"))) {
                    int level = 0;
                    while (k < code.size()) {
                        if (isPunct(code[k], "{"))
                            ++level;
                        else if (isPunct(code[k], "}") && --level == 0)
                            break;
                        ++k;
                    }
                    ++k;
                    continue;
                }
                return k;
            }
            if (isPunct(t, "(")) {
                std::size_t close = matchParen(k);
                if (close == code.size())
                    return code.size();
                k = close + 1;
                continue;
            }
            if (isPunct(t, ":"))
                inInitList = true;
            if (t->kind == TokenKind::Identifier &&
                kAbortsSignature.count(t->text)) {
                return code.size();
            }
            bool benign =
                t->kind == TokenKind::Identifier ||
                t->kind == TokenKind::Number ||
                t->kind == TokenKind::String ||
                t->kind == TokenKind::CharLit ||
                isPunct(t, "::") || isPunct(t, "->") || isPunct(t, "<") ||
                isPunct(t, ">") || isPunct(t, "&") || isPunct(t, "*") ||
                isPunct(t, ",") || isPunct(t, ":") || isPunct(t, "}");
            if (!benign)
                return code.size();
            ++k;
        }
        return code.size();
    };

    std::size_t i = 0;
    while (i < code.size()) {
        const Token *t = code[i];
        if (isPunct(t, "{")) {
            ++depth;
            ++i;
            continue;
        }
        if (isPunct(t, "}")) {
            --depth;
            if (!fnStack.empty() && fnStack.back().depthAtOpen == depth) {
                fnStack.back().def.bodyEndLine = t->line;
                defs.push_back(fnStack.back().def);
                fnStack.pop_back();
            }
            ++i;
            continue;
        }
        if (!fnStack.empty()) {
            // Inside a body: record calls only.
            if (t->kind == TokenKind::Identifier &&
                !kNotACall.count(t->text) &&
                i + 1 < code.size() && isPunct(code[i + 1], "(")) {
                fnStack.back().def.calls.push_back(std::string(t->text));
            }
            ++i;
            continue;
        }
        // At namespace/class scope: look for `name ( ... ) ... {`.
        if (t->kind == TokenKind::Identifier && !kNotACall.count(t->text) &&
            i + 1 < code.size() && isPunct(code[i + 1], "(")) {
            std::size_t close = matchParen(i + 1);
            if (close < code.size()) {
                std::size_t body = findBody(close + 1);
                if (body < code.size()) {
                    FunctionDef def;
                    def.name = std::string(t->text);
                    def.fileIndex = fileIndex;
                    def.line = t->line;
                    def.bodyBeginLine = code[body]->line;
                    fnStack.push_back({def, depth});
                    ++depth; // the body '{'
                    i = body + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        ++i;
    }

    // Unterminated bodies (lexer tolerance): close at EOF.
    while (!fnStack.empty()) {
        fnStack.back().def.bodyEndLine =
            file.tokens.empty() ? 0 : file.tokens.back().line;
        defs.push_back(fnStack.back().def);
        fnStack.pop_back();
    }

    std::sort(defs.begin(), defs.end(),
              [](const FunctionDef &a, const FunctionDef &b) {
                  if (a.line != b.line) {
                      return a.line < b.line;
                  }
                  // Tie keys: name, then body extent — two defs can
                  // share a line (one-line lambdas, macro expansions).
                  if (a.name != b.name) {
                      return a.name < b.name;
                  }
                  return a.bodyEndLine < b.bodyEndLine;
              });
    return defs;
}

std::vector<Finding>
runTaint(const std::vector<const SourceFile *> &files,
         const std::vector<Finding> &determinismFindings,
         std::vector<SuppressionSet *> &sups)
{
    // All function definitions, in deterministic (file, line) order.
    std::vector<FunctionDef> defs;
    std::map<std::string, int> fileIndexByRelPath;
    for (std::size_t i = 0; i < files.size(); ++i) {
        fileIndexByRelPath[files[i]->relPath] = static_cast<int>(i);
        std::vector<FunctionDef> fs =
            extractFunctions(*files[i], static_cast<int>(i));
        defs.insert(defs.end(), fs.begin(), fs.end());
    }

    // callee name -> defs that call it.
    std::map<std::string, std::vector<int>> callers;
    for (std::size_t d = 0; d < defs.size(); ++d) {
        std::set<std::string> uniq(defs[d].calls.begin(),
                                   defs[d].calls.end());
        for (const std::string &callee : uniq)
            callers[callee].push_back(static_cast<int>(d));
    }

    struct TaintInfo
    {
        std::vector<std::string> chain; ///< This fn down to the source.
        std::string source;             ///< "rule at file:line".
        bool direct;
    };
    std::map<int, TaintInfo> taint;

    // Seed with the enclosing function of each determinism finding
    // (innermost definition whose body spans the finding line).
    std::deque<int> queue;
    for (const Finding &f : determinismFindings) {
        if (!isDeterminismRule(f.rule))
            continue;
        auto fileIt = fileIndexByRelPath.find(f.relPath);
        if (fileIt == fileIndexByRelPath.end())
            continue;
        int best = -1;
        int bestSpan = 0;
        for (std::size_t d = 0; d < defs.size(); ++d) {
            const FunctionDef &def = defs[d];
            if (def.fileIndex != fileIt->second)
                continue;
            if (f.line < def.bodyBeginLine || f.line > def.bodyEndLine)
                continue;
            int span = def.bodyEndLine - def.bodyBeginLine;
            if (best < 0 || span < bestSpan) {
                best = static_cast<int>(d);
                bestSpan = span;
            }
        }
        if (best < 0 || taint.count(best))
            continue;
        TaintInfo info;
        info.chain = {defs[best].name};
        info.source = f.rule + " at " + f.relPath + ":" +
                      std::to_string(f.line);
        info.direct = true;
        taint[best] = info;
        queue.push_back(best);
    }

    // Breadth-first from callee to caller: first discovery wins, so
    // every reported chain is shortest.
    std::vector<Finding> out;
    while (!queue.empty()) {
        int d = queue.front();
        queue.pop_front();
        auto it = callers.find(defs[d].name);
        if (it == callers.end())
            continue;
        for (int caller : it->second) {
            if (caller == d || taint.count(caller))
                continue;
            const FunctionDef &def = defs[caller];
            // A suppression on the definition line vouches for the
            // whole function: no finding, and callers stay clean —
            // the same semantics as the audited wrappers.
            if (sups[def.fileIndex] &&
                sups[def.fileIndex]->suppress("determinism-taint",
                                              def.line)) {
                continue;
            }
            TaintInfo info;
            info.chain = taint[d].chain;
            info.chain.insert(info.chain.begin(), defs[caller].name);
            info.source = taint[d].source;
            info.direct = false;
            taint[caller] = info;
            queue.push_back(caller);
            std::string chain;
            for (const std::string &n : info.chain) {
                if (!chain.empty())
                    chain += " -> ";
                chain += n;
            }
            out.push_back(
                {files[def.fileIndex]->relPath, def.line, 1,
                 "determinism-taint",
                 "function '" + def.name +
                     "' reaches a banned determinism source through "
                     "calls: " + chain + " (" + info.source +
                     "); only the audited wrappers in common/ and obs/ "
                     "may (docs/analysis.md)"});
        }
    }

    std::sort(out.begin(), out.end(), findingLess);
    return out;
}

} // namespace gsku::analyze
