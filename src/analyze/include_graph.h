/**
 * @file
 * Include-graph construction and the two graph rules of the analyzer
 * (docs/analysis.md "Module layering"):
 *
 *  - include-layering: quoted includes between src/ modules must
 *    follow the layering DAG this repo actually builds on —
 *    obs at the bottom (it includes nothing but itself), then common,
 *    then carbon, then perf and reliability, then cluster, then gsf
 *    on top. bench/, examples/, tools/, and tests/ may include
 *    anything. An include edge that points up or sideways couples
 *    layers that were designed to be independently testable.
 *
 *  - include-cycle: the file-level include graph must be acyclic.
 *    `#pragma once` hides cycles at compile time (one file simply
 *    sees a truncated header), so a cycle is invisible until it
 *    manifests as an incomplete-type error three refactors later.
 *
 * The graph is also a first-class artifact: dumpJson() emits the
 * file-level edges, the module-level condensation, and the
 * acyclicity verdict consumed by CI.
 */
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "analyze/rules.h"
#include "analyze/source.h"

namespace gsku::analyze {

class IncludeGraph
{
  public:
    /** One resolved or unresolved quoted include. */
    struct Edge
    {
        int from = -1;          ///< Index into files().
        int to = -1;            ///< Index into files(), -1 unresolved.
        int line = 0;           ///< Line of the #include.
        std::string target;     ///< Spelling inside the quotes.
    };

    /**
     * Build the graph over `files`. Quoted targets resolve, in
     * order, against `src/<target>` under the repo root, the
     * including file's directory, and the repo root itself — the
     * three forms this tree uses. Angle includes are system headers
     * and carry no layering obligations.
     */
    static IncludeGraph build(const std::vector<const SourceFile *> &files);

    const std::vector<const SourceFile *> &files() const { return files_; }
    const std::vector<Edge> &edges() const { return edges_; }

    /** include-layering findings (suppressible on the include line). */
    std::vector<Finding> layeringFindings(
        std::vector<SuppressionSet *> &sups) const;

    /** include-cycle findings, one per distinct cycle. */
    std::vector<Finding> cycleFindings() const;

    bool acyclic() const;

    /** The allowed module -> module dependency table (self-edges
     *  implied). Exposed for the docs generator and tests. */
    static const std::map<std::string, std::vector<std::string>> &
    layeringDag();

    /** Machine-readable dump: nodes, edges, module condensation,
     *  acyclicity verdict. */
    void dumpJson(std::ostream &out) const;

  private:
    std::vector<const SourceFile *> files_;
    std::vector<Edge> edges_;
};

} // namespace gsku::analyze
