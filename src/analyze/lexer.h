/**
 * @file
 * Token-level lexer for the static analyzer (docs/analysis.md).
 *
 * tools/lint.py matched regexes against raw lines, so it could not
 * tell code from comments, string literals, or raw strings — the
 * blind spots pinned by tests/analyze/fixtures. This lexer produces a
 * faithful token stream instead: rules in rules.cc match token
 * sequences, so a banned identifier inside a string literal is just
 * string content, and a `// lint-ok:` inside a string is not a
 * suppression.
 *
 * Scope: this is a *lexer*, not a preprocessor or parser. It does not
 * expand macros or track conditional compilation; it recognizes
 * exactly the lexical shapes the rules need — identifiers, numbers,
 * string/char literals (including raw strings and encoding prefixes),
 * comments, punctuation (with `::` and `->` kept as single tokens),
 * and preprocessor directives with their header-name operands.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gsku::analyze {

enum class TokenKind
{
    Identifier,    ///< Identifiers and keywords (rules match by text).
    Number,        ///< pp-number: 12, 0x1p3, 1.5e-9, 1.0_kw, ...
    String,        ///< "..." with optional u8/u/U/L prefix.
    RawString,     ///< R"delim(...)delim" with optional prefix.
    CharLit,       ///< '...' with optional prefix.
    Punct,         ///< One operator/punctuator; `::` and `->` whole.
    LineComment,   ///< `//...` up to (not including) the newline.
    BlockComment,  ///< `/*...*/`, possibly spanning lines.
    Directive,     ///< Preprocessor directive name (`include`, ...).
    HeaderName,    ///< `<...>` operand of an #include.
};

struct Token
{
    TokenKind kind;
    /** Exact source spelling (quotes, prefixes, and comment markers
     *  included). Points into the lexed buffer, which must outlive
     *  the token. */
    std::string_view text;
    int line = 0;  ///< 1-based line of the token's first character.
    int col = 0;   ///< 1-based column of the token's first character.
    /** True for the directive token and every operand token on a
     *  preprocessor line (including backslash continuations). */
    bool inDirective = false;
};

/**
 * Lex one translation unit. Never throws on malformed input:
 * unterminated literals and comments extend to end of file, and
 * bytes that fit no token class are skipped — an analyzer must keep
 * going where a compiler would stop.
 *
 * `content` must outlive the returned tokens.
 */
std::vector<Token> lex(std::string_view content);

/**
 * The body of a String/RawString token: encoding prefix, quotes, and
 * raw-string delimiters stripped, escape sequences NOT processed
 * (`"a\nb"` yields `a\nb`, 4 chars). For other kinds returns `text`.
 */
std::string_view literalBody(const Token &tok);

} // namespace gsku::analyze
