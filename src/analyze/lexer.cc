#include "analyze/lexer.h"

#include <cctype>

namespace gsku::analyze {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

/** Encoding prefixes that may glue onto a string/char literal. */
bool
isLiteralPrefix(std::string_view ident)
{
    return ident == "u8" || ident == "u" || ident == "U" || ident == "L" ||
           ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "UR" || ident == "LR";
}

class Lexer
{
  public:
    explicit Lexer(std::string_view src) : src_(src) {}

    std::vector<Token> run();

  private:
    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    bool atLineStart_ = true;   ///< Only whitespace seen on this line.
    bool inDirective_ = false;  ///< Between a `#` and its (real) newline.
    bool expectHeader_ = false; ///< Next token of an #include directive.
    std::vector<Token> out_;

    bool done() const { return pos_ >= src_.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    void
    advance()
    {
        if (src_[pos_] == '\n') {
            ++line_;
            col_ = 1;
            atLineStart_ = true;
        } else {
            ++col_;
        }
        ++pos_;
    }

    void
    newline()
    {
        // A newline ends a directive unless escaped with a backslash
        // (possibly followed by trailing spaces, which we tolerate
        // only in the simple backslash-newline form).
        if (inDirective_) {
            bool escaped =
                !out_.empty() && pos_ > 0 && src_[pos_ - 1] == '\\';
            // Look back past CR for CRLF files.
            if (!escaped && pos_ > 1 && src_[pos_ - 1] == '\r' &&
                src_[pos_ - 2] == '\\') {
                escaped = true;
            }
            if (!escaped) {
                inDirective_ = false;
                expectHeader_ = false;
            }
        }
        advance();
    }

    Token
    make(TokenKind kind, std::size_t begin, int line, int col) const
    {
        Token t;
        t.kind = kind;
        t.text = src_.substr(begin, pos_ - begin);
        t.line = line;
        t.col = col;
        t.inDirective = inDirective_;
        return t;
    }

    void lexLineComment();
    void lexBlockComment();
    void lexString();
    void lexRawString();
    void lexCharLit();
    void lexNumber();
    void lexIdentifierOrLiteral();
    void lexHeaderName();
    void lexDirective();
    void lexPunct();
};

void
Lexer::lexLineComment()
{
    const std::size_t begin = pos_;
    const int line = line_, col = col_;
    while (!done() && peek() != '\n')
        advance();
    out_.push_back(make(TokenKind::LineComment, begin, line, col));
}

void
Lexer::lexBlockComment()
{
    const std::size_t begin = pos_;
    const int line = line_, col = col_;
    advance(); // '/'
    advance(); // '*'
    while (!done()) {
        if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            break;
        }
        if (peek() == '\n')
            newline();
        else
            advance();
    }
    Token t = make(TokenKind::BlockComment, begin, line, col);
    out_.push_back(t);
}

void
Lexer::lexString()
{
    // pos_ is at the opening quote; any prefix was already consumed
    // by the caller (which adjusts the token start itself).
    advance(); // '"'
    while (!done()) {
        char c = peek();
        if (c == '\\' && pos_ + 1 < src_.size()) {
            advance();
            advance();
            continue;
        }
        if (c == '"') {
            advance();
            return;
        }
        if (c == '\n') {
            // Unterminated literal: stop at the newline so the rest
            // of the file still lexes sanely.
            return;
        }
        advance();
    }
}

void
Lexer::lexRawString()
{
    // pos_ is at the opening quote of R"delim( ... )delim".
    advance(); // '"'
    std::size_t delimBegin = pos_;
    while (!done() && peek() != '(' && peek() != '\n')
        advance();
    std::string_view delim = src_.substr(delimBegin, pos_ - delimBegin);
    if (done() || peek() != '(')
        return; // malformed; tolerate
    advance();  // '('
    // Scan for `)delim"`.
    while (!done()) {
        if (peek() == ')') {
            std::size_t after = pos_ + 1;
            if (after + delim.size() < src_.size() + 1 &&
                src_.compare(after, delim.size(), delim) == 0 &&
                after + delim.size() < src_.size() &&
                src_[after + delim.size()] == '"') {
                // Consume `)delim"`.
                for (std::size_t i = 0; i < delim.size() + 2; ++i)
                    advance();
                return;
            }
        }
        if (peek() == '\n')
            newline();
        else
            advance();
    }
}

void
Lexer::lexCharLit()
{
    advance(); // '\''
    while (!done()) {
        char c = peek();
        if (c == '\\' && pos_ + 1 < src_.size()) {
            advance();
            advance();
            continue;
        }
        if (c == '\'') {
            advance();
            return;
        }
        if (c == '\n')
            return; // unterminated; tolerate
        advance();
    }
}

void
Lexer::lexNumber()
{
    const std::size_t begin = pos_;
    const int line = line_, col = col_;
    // pp-number: digits, identifier chars, '.', digit separators, and
    // signs directly after an exponent marker.
    while (!done()) {
        char c = peek();
        if (isIdentChar(c) || c == '.' || c == '\'') {
            advance();
            continue;
        }
        if ((c == '+' || c == '-') && pos_ > begin) {
            char prev = src_[pos_ - 1];
            if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
                advance();
                continue;
            }
        }
        break;
    }
    out_.push_back(make(TokenKind::Number, begin, line, col));
}

void
Lexer::lexIdentifierOrLiteral()
{
    const std::size_t begin = pos_;
    const int line = line_, col = col_;
    while (!done() && isIdentChar(peek()))
        advance();
    std::string_view ident = src_.substr(begin, pos_ - begin);

    // An encoding prefix glued to a quote turns the whole thing into
    // one literal token: u8"...", LR"(...)", u'x', ...
    if (isLiteralPrefix(ident) && !done()) {
        if (peek() == '"') {
            const bool raw = ident.back() == 'R';
            if (raw)
                lexRawString();
            else
                lexString();
            out_.push_back(make(raw ? TokenKind::RawString
                                    : TokenKind::String,
                                begin, line, col));
            return;
        }
        if (peek() == '\'' && ident.back() != 'R') {
            lexCharLit();
            out_.push_back(make(TokenKind::CharLit, begin, line, col));
            return;
        }
    }
    out_.push_back(make(TokenKind::Identifier, begin, line, col));
}

void
Lexer::lexHeaderName()
{
    const std::size_t begin = pos_;
    const int line = line_, col = col_;
    advance(); // '<'
    while (!done() && peek() != '>' && peek() != '\n')
        advance();
    if (!done() && peek() == '>')
        advance();
    out_.push_back(make(TokenKind::HeaderName, begin, line, col));
}

void
Lexer::lexDirective()
{
    advance(); // '#'
    inDirective_ = true;
    while (!done() && (peek() == ' ' || peek() == '\t'))
        advance();
    const std::size_t begin = pos_;
    const int line = line_, col = col_;
    while (!done() && isIdentChar(peek()))
        advance();
    Token t = make(TokenKind::Directive, begin, line, col);
    out_.push_back(t);
    expectHeader_ = (t.text == "include" || t.text == "include_next");
}

void
Lexer::lexPunct()
{
    const std::size_t begin = pos_;
    const int line = line_, col = col_;
    // Keep `::` and `->` as single tokens: the rules match
    // qualified names and member accesses as 3-token sequences.
    if ((peek() == ':' && peek(1) == ':') ||
        (peek() == '-' && peek(1) == '>')) {
        advance();
        advance();
    } else {
        advance();
    }
    out_.push_back(make(TokenKind::Punct, begin, line, col));
}

std::vector<Token>
Lexer::run()
{
    while (!done()) {
        char c = peek();
        if (c == '\n') {
            newline();
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            advance();
            continue;
        }
        const bool lineStart = atLineStart_;
        atLineStart_ = false;
        if (c == '/' && peek(1) == '/') {
            lexLineComment();
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            lexBlockComment();
            continue;
        }
        if (c == '#' && lineStart && !inDirective_) {
            lexDirective();
            continue;
        }
        if (c == '<' && inDirective_ && expectHeader_) {
            lexHeaderName();
            expectHeader_ = false;
            continue;
        }
        if (c == '"') {
            const std::size_t begin = pos_;
            const int line = line_, col = col_;
            lexString();
            out_.push_back(make(TokenKind::String, begin, line, col));
            if (expectHeader_)
                expectHeader_ = false;
            continue;
        }
        if (c == '\'') {
            const std::size_t begin = pos_;
            const int line = line_, col = col_;
            lexCharLit();
            out_.push_back(make(TokenKind::CharLit, begin, line, col));
            continue;
        }
        if (isDigit(c) || (c == '.' && isDigit(peek(1)))) {
            lexNumber();
            continue;
        }
        if (isIdentStart(c)) {
            lexIdentifierOrLiteral();
            continue;
        }
        if (c == '\\') {
            // Line splice or stray backslash: consume and move on.
            advance();
            continue;
        }
        lexPunct();
    }
    return out_;
}

} // namespace

std::vector<Token>
lex(std::string_view content)
{
    return Lexer(content).run();
}

std::string_view
literalBody(const Token &tok)
{
    std::string_view t = tok.text;
    if (tok.kind == TokenKind::String) {
        std::size_t open = t.find('"');
        if (open == std::string_view::npos)
            return t;
        t.remove_prefix(open + 1);
        if (!t.empty() && t.back() == '"')
            t.remove_suffix(1);
        return t;
    }
    if (tok.kind == TokenKind::RawString) {
        std::size_t open = t.find('"');
        if (open == std::string_view::npos)
            return t;
        std::size_t paren = t.find('(', open);
        if (paren == std::string_view::npos)
            return t;
        std::size_t delimLen = paren - open - 1;
        std::size_t bodyBegin = paren + 1;
        // Closing is `)delim"`.
        std::size_t bodyEnd = t.size();
        if (t.size() >= bodyBegin + delimLen + 2)
            bodyEnd = t.size() - delimLen - 2;
        if (bodyEnd < bodyBegin)
            bodyEnd = bodyBegin;
        return t.substr(bodyBegin, bodyEnd - bodyBegin);
    }
    return t;
}

} // namespace gsku::analyze
