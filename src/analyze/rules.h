/**
 * @file
 * Token-stream rules of the GreenSKU analyzer: the eight invariants
 * that started life as regexes in tools/lint.py, rebuilt on the real
 * token stream from analyze/lexer.h so they never fire inside
 * comments or string literals (docs/analysis.md lists the catalog and
 * rationale for each).
 *
 * Suppression grammar is unchanged from lint.py: append
 * `// lint-ok: <rule> <why>` to the offending line. Suppressions are
 * audited — one that silences nothing is itself a finding (rule
 * `lint-ok`), so stale escapes cannot accumulate. A `lint-ok` inside
 * a string literal is string content, not a suppression.
 */
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace gsku::analyze {

struct Finding
{
    std::string relPath;
    int line = 0;
    int col = 0;
    std::string rule;
    std::string message;
};

/** Sort key used everywhere findings are emitted. */
bool findingLess(const Finding &a, const Finding &b);

/**
 * Which files each rule skips. The built-in table mirrors the repo
 * policy (the audited homes of each banned construct); `allow()`
 * extends it per run — the per-tree masks of docs/analysis.md.
 *
 * Entry forms: a path ending in '/' masks the whole subtree, any
 * other entry masks that exact root-relative file.
 */
class Policy
{
  public:
    /** The default repo policy (rng.h may use engines, obs/ may read
     *  clocks, bench/harness.h owns the WallTimer, ...). */
    static Policy repoDefault();

    /** Mask `rule` in `pathOrPrefix` (exact file, or dir with '/'). */
    void allow(const std::string &rule, const std::string &pathOrPrefix);

    bool allowed(const std::string &rule, const std::string &relPath) const;

  private:
    std::map<std::string, std::vector<std::string>> masks_;
};

/** Tracks `// lint-ok:` comments of one file: which rule each names,
 *  whether it silenced anything, and the audit findings at the end. */
class SuppressionSet
{
  public:
    SuppressionSet(const SourceFile &file,
                   const std::set<std::string> &knownRules);

    /** True (and marks the suppression used) when `rule` is
     *  suppressed on `line`. */
    bool suppress(const std::string &rule, int line);

    /** True when any line of the file suppresses `rule` (pragma-once
     *  has no meaningful line). Marks it used. */
    bool suppressAnywhere(const std::string &rule);

    /** Unknown-rule and stale-suppression findings; call last. A
     *  suppression is stale only when its rule actually ran this
     *  invocation (`enabled`) and still silenced nothing — a
     *  `--rules` subset must not manufacture stale findings. */
    std::vector<Finding> auditFindings(
        const std::string &relPath,
        const std::set<std::string> &enabled) const;

  private:
    struct Entry
    {
        int line;
        std::string rule;
        bool known;
        bool used = false;
    };
    std::vector<Entry> entries_;
};

/** Stable catalog entry, shared by --list-rules and the SARIF
 *  tool.driver.rules array. */
struct RuleInfo
{
    std::string name;
    std::string summary;
};

/** All rules in reporting order: the eight token rules plus
 *  include-layering, include-cycle, and determinism-taint. */
const std::vector<RuleInfo> &ruleCatalog();

/** Names from ruleCatalog() as a set (valid `lint-ok` targets). */
const std::set<std::string> &ruleNames();

/**
 * Run the token rules of `enabled` on one file, honoring `policy`
 * masks and recording suppression use in `sup`. Does not run the
 * graph rules (include_graph.h) or the taint pass (taint.h), which
 * need the whole file set.
 */
std::vector<Finding> checkFile(const SourceFile &file, const Policy &policy,
                               const std::set<std::string> &enabled,
                               SuppressionSet &sup);

} // namespace gsku::analyze
