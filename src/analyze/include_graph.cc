#include "analyze/include_graph.h"

#include <algorithm>
#include <ostream>
#include <set>

#include "analyze/json_writer.h"

namespace gsku::analyze {

namespace {

std::string
dirName(const std::string &relPath)
{
    std::size_t slash = relPath.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : relPath.substr(0, slash);
}

/** Normalize "a/b/../c" and "a/./c" segments (no filesystem access —
 *  the graph works on repo-relative paths). */
std::string
normalize(const std::string &path)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= path.size()) {
        std::size_t end = path.find('/', begin);
        if (end == std::string::npos)
            end = path.size();
        std::string part = path.substr(begin, end - begin);
        if (part == "..") {
            if (!parts.empty() && parts.back() != "..")
                parts.pop_back();
            else
                parts.push_back(part);
        } else if (!part.empty() && part != ".") {
            parts.push_back(part);
        }
        begin = end + 1;
    }
    std::string out;
    for (const std::string &p : parts) {
        if (!out.empty())
            out += '/';
        out += p;
    }
    return out;
}

} // namespace

const std::map<std::string, std::vector<std::string>> &
IncludeGraph::layeringDag()
{
    // The module layering this repo actually builds on (see
    // docs/analysis.md for the diagram). Self-dependencies are
    // implied; a module absent from the map (bench, examples, tools,
    // tests, fixtures) is unrestricted as an includer.
    static const std::map<std::string, std::vector<std::string>> dag = {
        {"obs", {}},
        {"common", {"obs"}},
        {"carbon", {"common", "obs"}},
        {"perf", {"carbon", "common", "obs"}},
        {"reliability", {"carbon", "common", "obs"}},
        {"cluster", {"perf", "carbon", "common", "obs"}},
        {"analyze", {"common", "obs"}},
        {"gsf",
         {"reliability", "cluster", "perf", "carbon", "common", "obs"}},
    };
    return dag;
}

IncludeGraph
IncludeGraph::build(const std::vector<const SourceFile *> &files)
{
    IncludeGraph g;
    g.files_ = files;

    std::map<std::string, int> byRelPath;
    for (std::size_t i = 0; i < files.size(); ++i)
        byRelPath[files[i]->relPath] = static_cast<int>(i);

    for (std::size_t i = 0; i < files.size(); ++i) {
        const SourceFile &f = *files[i];
        for (std::size_t t = 0; t + 1 < f.tokens.size(); ++t) {
            const Token &dir = f.tokens[t];
            if (dir.kind != TokenKind::Directive || dir.text != "include")
                continue;
            const Token &operand = f.tokens[t + 1];
            if (operand.kind != TokenKind::String)
                continue; // angle includes are system headers
            std::string target(literalBody(operand));

            Edge e;
            e.from = static_cast<int>(i);
            e.line = operand.line;
            e.target = target;
            // Project style resolves quoted includes against src/
            // first (target_include_directories PUBLIC src), then the
            // including directory, then the repo root.
            for (const std::string &candidate :
                 {normalize("src/" + target),
                  normalize(dirName(f.relPath) + "/" + target),
                  normalize(target)}) {
                auto it = byRelPath.find(candidate);
                if (it != byRelPath.end()) {
                    e.to = it->second;
                    break;
                }
            }
            g.edges_.push_back(e);
        }
    }
    return g;
}

std::vector<Finding>
IncludeGraph::layeringFindings(std::vector<SuppressionSet *> &sups) const
{
    std::vector<Finding> out;
    const auto &dag = layeringDag();
    for (const Edge &e : edges_) {
        const SourceFile &from = *files_[e.from];
        auto it = dag.find(from.module);
        if (it == dag.end())
            continue; // unrestricted tree
        // Module of the include target, whether or not it resolved to
        // an analyzed file: a layering violation should not hide just
        // because the offending header was outside the analysis set.
        std::string toModule =
            e.to >= 0 ? files_[e.to]->module
                      : moduleOf(normalize("src/" + e.target));
        if (toModule.empty() || toModule == from.module)
            continue;
        if (std::find(it->second.begin(), it->second.end(), toModule) !=
            it->second.end()) {
            continue;
        }
        if (sups[e.from] && sups[e.from]->suppress("include-layering",
                                                   e.line)) {
            continue;
        }
        out.push_back(
            {from.relPath, e.line, 1, "include-layering",
             "module '" + from.module + "' must not include '" +
                 e.target + "' (module '" + toModule +
                 "'): the layering DAG allows " + from.module +
                 " -> {" + [&] {
                     std::string deps;
                     for (const std::string &d : it->second) {
                         if (!deps.empty())
                             deps += ", ";
                         deps += d;
                     }
                     return deps;
                 }() + "} only (docs/analysis.md)"});
    }
    return out;
}

std::vector<Finding>
IncludeGraph::cycleFindings() const
{
    std::vector<Finding> out;

    // Adjacency over resolved edges only.
    std::vector<std::vector<const Edge *>> adj(files_.size());
    for (const Edge &e : edges_)
        if (e.to >= 0)
            adj[e.from].push_back(&e);

    enum class Color { White, Grey, Black };
    std::vector<Color> color(files_.size(), Color::White);
    std::vector<int> stack;
    std::set<std::vector<int>> seenCycles;

    // Iterative DFS; on a grey target, the stack slice from that
    // target to the top is a cycle.
    struct Frame
    {
        int node;
        std::size_t next = 0;
    };
    for (std::size_t root = 0; root < files_.size(); ++root) {
        if (color[root] != Color::White)
            continue;
        std::vector<Frame> frames{{static_cast<int>(root)}};
        color[root] = Color::Grey;
        stack.push_back(static_cast<int>(root));
        while (!frames.empty()) {
            Frame &fr = frames.back();
            if (fr.next < adj[fr.node].size()) {
                const Edge *e = adj[fr.node][fr.next++];
                if (color[e->to] == Color::White) {
                    color[e->to] = Color::Grey;
                    stack.push_back(e->to);
                    frames.push_back({e->to});
                } else if (color[e->to] == Color::Grey) {
                    auto begin = std::find(stack.begin(), stack.end(),
                                           e->to);
                    std::vector<int> cycle(begin, stack.end());
                    // Canonical rotation so each cycle reports once.
                    std::vector<int> canon = cycle;
                    auto minIt =
                        std::min_element(canon.begin(), canon.end());
                    std::rotate(canon.begin(), minIt, canon.end());
                    if (seenCycles.insert(canon).second) {
                        std::string chain;
                        for (int idx : cycle)
                            chain += files_[idx]->relPath + " -> ";
                        chain += files_[e->to]->relPath;
                        out.push_back({files_[fr.node]->relPath, e->line,
                                       1, "include-cycle",
                                       "include cycle: " + chain});
                    }
                }
            } else {
                color[fr.node] = Color::Black;
                stack.pop_back();
                frames.pop_back();
            }
        }
    }
    return out;
}

bool
IncludeGraph::acyclic() const
{
    return cycleFindings().empty();
}

void
IncludeGraph::dumpJson(std::ostream &out) const
{
    JsonWriter w(out);
    w.beginObject();
    w.key("files").value(files_.size());

    w.key("nodes").beginArray();
    for (const SourceFile *f : files_) {
        w.beginObject();
        w.key("path").value(f->relPath);
        w.key("module").value(f->module);
        w.endObject();
    }
    w.endArray();

    w.key("edges").beginArray();
    for (const Edge &e : edges_) {
        if (e.to < 0)
            continue;
        w.beginObject();
        w.key("from").value(files_[e.from]->relPath);
        w.key("to").value(files_[e.to]->relPath);
        w.key("line").value(e.line);
        w.endObject();
    }
    w.endArray();

    w.key("unresolved").beginArray();
    for (const Edge &e : edges_) {
        if (e.to >= 0)
            continue;
        w.beginObject();
        w.key("from").value(files_[e.from]->relPath);
        w.key("target").value(e.target);
        w.key("line").value(e.line);
        w.endObject();
    }
    w.endArray();

    // Module condensation: the deps each module actually has.
    std::map<std::string, std::set<std::string>> observed;
    for (const SourceFile *f : files_)
        if (!f->module.empty())
            observed[f->module]; // ensure node exists
    for (const Edge &e : edges_) {
        if (e.to < 0)
            continue;
        const std::string &a = files_[e.from]->module;
        const std::string &b = files_[e.to]->module;
        if (!a.empty() && !b.empty() && a != b)
            observed[a].insert(b);
    }
    w.key("modules").beginObject();
    for (const auto &[mod, deps] : observed) {
        w.key(mod).beginObject();
        w.key("deps").beginArray();
        for (const std::string &d : deps)
            w.value(d);
        w.endArray();
        const auto &dag = layeringDag();
        auto it = dag.find(mod);
        if (it != dag.end()) {
            w.key("allowed").beginArray();
            for (const std::string &d : it->second)
                w.value(d);
            w.endArray();
        }
        w.endObject();
    }
    w.endObject();

    w.key("acyclic").value(acyclic());
    w.endObject();
    out << '\n';
}

} // namespace gsku::analyze
