/**
 * @file
 * Source discovery for the analyzer: loading files, computing
 * repo-relative paths, and classifying files into the modules the
 * layering check reasons about (docs/analysis.md "Module layering").
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analyze/lexer.h"

namespace gsku::analyze {

/** One lexed file. Tokens point into `content`; SourceFile is held by
 *  unique_ptr so the views stay valid as collections grow. */
struct SourceFile
{
    std::string path;     ///< Path as opened (absolute or as given).
    std::string relPath;  ///< Root-relative, forward slashes.
    std::string module;   ///< "carbon", "common", ... or "bench",
                          ///< "examples", "tools", "tests"; "" = other.
    std::string content;
    std::vector<Token> tokens;

    bool isHeader() const;
};

/**
 * Module of a root-relative path: `src/<m>/...` yields `<m>`;
 * `bench/...`, `examples/...`, `tools/...`, `tests/...` yield the
 * tree name; anything else yields "".
 */
std::string moduleOf(const std::string &relPath);

/** Root-relative forward-slash form of `path`; if `path` does not
 *  live under `root`, its normalized form is returned unchanged. */
std::string relativeTo(const std::string &root, const std::string &path);

/**
 * Expand files and directories into the sorted list of .h/.cc files
 * to analyze (directories are walked recursively, sorted by path so
 * every downstream artifact is deterministic). Throws UserError for a
 * path that does not exist.
 */
std::vector<std::string> collectFiles(const std::vector<std::string> &paths);

/** Read and lex one file. Throws UserError if it cannot be read. */
std::unique_ptr<SourceFile> loadSource(const std::string &path,
                                       const std::string &root);

} // namespace gsku::analyze
