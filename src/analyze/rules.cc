#include "analyze/rules.h"

#include <algorithm>
#include <cctype>

#include "obs/ledger.h"

namespace gsku::analyze {

namespace {

// ------------------------------------------------------------------
// Identifier-word machinery for raw-double-units (ported verbatim
// from tools/lint.py so the two agree on every suppression).
// ------------------------------------------------------------------

const std::set<std::string> kUnitWords = {
    "carbon", "co2", "emission", "emissions", "embodied",
    "power", "watt", "watts", "tdp",
    "energy", "kwh", "kg", "joule", "joules",
    "cost", "usd", "price", "capex", "opex",
    "intensity",
};

const std::set<std::string> kDimensionlessWords = {
    "fraction", "share", "shares", "ratio", "factor", "savings",
    "relative", "scale", "scaling", "normalized", "derate", "pue",
    "loss", "slowdown", "residual", "efficiency", "premium",
};

/** snake_case / camelCase -> lowercase words ("kgCo2PerCm2" ->
 *  kg, co2, per, cm2). ALL-CAPS runs split into single letters,
 *  matching the Python word regex's effective behavior. */
std::vector<std::string>
splitWords(std::string_view ident)
{
    std::vector<std::string> words;
    std::size_t i = 0;
    auto lower = [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    };
    auto isLowerDigit = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    };
    while (i < ident.size()) {
        char c = ident[i];
        if (isLowerDigit(c)) {
            std::string w;
            while (i < ident.size() && isLowerDigit(ident[i]))
                w += ident[i++];
            words.push_back(w);
        } else if (c >= 'A' && c <= 'Z') {
            std::string w(1, lower(c));
            ++i;
            while (i < ident.size() && isLowerDigit(ident[i]))
                w += ident[i++];
            words.push_back(w);
        } else {
            ++i; // '_' and anything else separates words
        }
    }
    return words;
}

bool
intersects(const std::vector<std::string> &words,
           const std::set<std::string> &set)
{
    for (const std::string &w : words)
        if (set.count(w))
            return true;
    return false;
}

std::string
joinMatching(const std::vector<std::string> &words,
             const std::set<std::string> &set)
{
    std::set<std::string> hit;
    for (const std::string &w : words)
        if (set.count(w))
            hit.insert(w);
    std::string out;
    for (const std::string &w : hit) {
        if (!out.empty())
            out += ", ";
        out += w;
    }
    return out;
}

// ------------------------------------------------------------------
// Token helpers. Rules scan `code`: the token stream with comments
// removed, so nothing here can fire inside a comment, and string
// content only matters to the one rule that inspects literals.
// ------------------------------------------------------------------

struct Ctx
{
    const SourceFile &f;
    const std::vector<const Token *> &code;
    SuppressionSet &sup;
    std::vector<Finding> &out;
};

const Token *
at(const Ctx &ctx, std::size_t i)
{
    return i < ctx.code.size() ? ctx.code[i] : nullptr;
}

bool
isPunct(const Token *t, std::string_view text)
{
    return t && t->kind == TokenKind::Punct && t->text == text;
}

bool
isIdent(const Token *t, std::string_view text)
{
    return t && t->kind == TokenKind::Identifier && t->text == text;
}

void
report(Ctx &ctx, const std::string &rule, const Token &tok,
       const std::string &message)
{
    if (ctx.sup.suppress(rule, tok.line))
        return;
    ctx.out.push_back(
        {ctx.f.relPath, tok.line, tok.col, rule, message});
}

// ------------------------------------------------------------------
// Rule: pragma-once
// ------------------------------------------------------------------

void
checkPragmaOnce(Ctx &ctx)
{
    for (std::size_t i = 0; i + 1 < ctx.code.size(); ++i) {
        const Token *t = ctx.code[i];
        if (t->kind == TokenKind::Directive && t->text == "pragma" &&
            isIdent(at(ctx, i + 1), "once")) {
            return;
        }
    }
    if (ctx.sup.suppressAnywhere("pragma-once"))
        return;
    ctx.out.push_back({ctx.f.relPath, 1, 1, "pragma-once",
                       "header is missing '#pragma once'"});
}

// ------------------------------------------------------------------
// Rule: rng-usage
// ------------------------------------------------------------------

const std::set<std::string, std::less<>> kRandFns = {
    "rand", "srand", "drand48", "lrand48",
};
const std::set<std::string, std::less<>> kStdEngines = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "default_random_engine", "knuth_b",
    "ranlux24", "ranlux48", "ranlux24_base", "ranlux48_base",
};

void
checkRngUsage(Ctx &ctx)
{
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        const Token *t = ctx.code[i];
        if (t->kind != TokenKind::Identifier)
            continue;
        const Token *prev = i > 0 ? ctx.code[i - 1] : nullptr;
        const Token *next = at(ctx, i + 1);
        if (kRandFns.count(t->text) && isPunct(next, "(")) {
            // Member calls (obj.rand(...)) are someone else's rand;
            // qualified calls are banned only when std-qualified —
            // which the line-based linter could not even see.
            if (isPunct(prev, ".") || isPunct(prev, "->"))
                continue;
            if (isPunct(prev, "::") &&
                !(i >= 2 && isIdent(ctx.code[i - 2], "std")))
                continue;
            report(ctx, "rng-usage", *t,
                   "'" + std::string(t->text) +
                       "()' breaks seeded reproducibility; draw from "
                       "gsku::Rng (common/rng.h) instead");
            continue;
        }
        if (t->text == "std" && isPunct(next, "::")) {
            const Token *name = at(ctx, i + 2);
            if (name && name->kind == TokenKind::Identifier &&
                kStdEngines.count(name->text)) {
                report(ctx, "rng-usage", *t,
                       "'std::" + std::string(name->text) +
                           "' breaks seeded reproducibility; draw from "
                           "gsku::Rng (common/rng.h) instead");
            }
        }
    }
}

// ------------------------------------------------------------------
// Rule: error-convention
// ------------------------------------------------------------------

void
checkErrorConvention(Ctx &ctx)
{
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        const Token *t = ctx.code[i];
        if (!isIdent(t, "throw"))
            continue;
        // `throw;` (rethrow inside a catch) is allowed.
        if (isPunct(at(ctx, i + 1), ";"))
            continue;
        report(ctx, "error-convention", *t,
               "naked 'throw' bypasses the UserError/InternalError "
               "convention; use GSKU_REQUIRE/GSKU_ASSERT "
               "(common/error.h) or the contract macros "
               "(common/contracts.h)");
    }
}

// ------------------------------------------------------------------
// Rule: concurrency
// ------------------------------------------------------------------

void
checkConcurrency(Ctx &ctx)
{
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        const Token *t = ctx.code[i];
        if (isIdent(t, "std") && isPunct(at(ctx, i + 1), "::")) {
            const Token *name = at(ctx, i + 2);
            const Token *after = at(ctx, i + 3);
            if (name && (name->text == "thread" || name->text == "jthread")) {
                // std::thread::hardware_concurrency() queries without
                // spawning; any other use constructs execution.
                if (isPunct(after, "::"))
                    continue;
                report(ctx, "concurrency", *t,
                       "'std::" + std::string(name->text) +
                           "' spawns a raw thread; route all parallelism "
                           "through the worker pool in common/parallel.h "
                           "(docs/performance.md)");
                continue;
            }
            if (isIdent(name, "async") &&
                (isPunct(after, "(") || isPunct(after, "<"))) {
                report(ctx, "concurrency", *t,
                       "'std::async' spawns unmanaged execution; route "
                       "all parallelism through the worker pool in "
                       "common/parallel.h (docs/performance.md)");
                continue;
            }
        }
        if ((isPunct(t, ".") || isPunct(t, "->")) &&
            isIdent(at(ctx, i + 1), "detach") &&
            isPunct(at(ctx, i + 2), "(")) {
            report(ctx, "concurrency", *ctx.code[i + 1],
                   "'.detach()' orphans a thread; route all parallelism "
                   "through the worker pool in common/parallel.h "
                   "(docs/performance.md)");
        }
    }
}

// ------------------------------------------------------------------
// Rule: timing
// ------------------------------------------------------------------

const std::set<std::string, std::less<>> kClockNames = {
    "steady_clock", "system_clock", "high_resolution_clock",
};

void
checkTiming(Ctx &ctx)
{
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        const Token *t = ctx.code[i];
        if (t->kind != TokenKind::Identifier || !kClockNames.count(t->text))
            continue;
        if (isPunct(at(ctx, i + 1), "::") &&
            isIdent(at(ctx, i + 2), "now") &&
            isPunct(at(ctx, i + 3), "(")) {
            report(ctx, "timing", *t,
                   "'" + std::string(t->text) +
                       "::now()' reads a clock directly; time through "
                       "obs::TraceSpan (src/obs/trace.h) or the bench "
                       "WallTimer (bench/harness.h) so timing stays "
                       "attributable (docs/observability.md)");
        }
    }
}

// ------------------------------------------------------------------
// Rule: ledger-events
//
// The one rule that *inspects* string literals: a registry name
// spelled as a literal outside the registry survives renames
// silently. The registry itself (obs/ledger.h) is the source of
// truth — including it here means the rule can never drift from
// kLedgerEventNames.
// ------------------------------------------------------------------

void
checkLedgerEvents(Ctx &ctx)
{
    for (const Token *t : ctx.code) {
        if (t->kind != TokenKind::String && t->kind != TokenKind::RawString)
            continue;
        std::string_view body = literalBody(*t);
        for (const char *name : obs::kLedgerEventNames) {
            if (body != name)
                continue;
            report(ctx, "ledger-events", *t,
                   "ledger event name \"" + std::string(name) +
                       "\" as a string literal; use obs::LedgerEvent / "
                       "obs::eventName (src/obs/ledger.h) so renames "
                       "cannot orphan facts");
            break;
        }
    }
}

// ------------------------------------------------------------------
// Rule: checked-parse
// ------------------------------------------------------------------

const std::set<std::string, std::less<>> kRawParseFns = {
    "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod", "stold",
    "atoi", "atol", "atoll", "atof", "strtol", "strtoll", "strtoul",
    "strtoull", "strtof", "strtod", "strtold",
};

void
checkCheckedParse(Ctx &ctx)
{
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        const Token *t = ctx.code[i];
        if (t->kind != TokenKind::Identifier ||
            !kRawParseFns.count(t->text) || !isPunct(at(ctx, i + 1), "(")) {
            continue;
        }
        const Token *prev = i > 0 ? ctx.code[i - 1] : nullptr;
        // Member functions that merely share a name are fine, as is
        // a non-std namespace's own stoi.
        if (isPunct(prev, ".") || isPunct(prev, "->"))
            continue;
        if (isPunct(prev, "::") &&
            !(i >= 2 && isIdent(ctx.code[i - 2], "std")))
            continue;
        report(ctx, "checked-parse", *t,
               "'" + std::string(t->text) +
                   "()' is a raw numeric conversion; use "
                   "parseInt/parseLong/parseU64/parseDouble "
                   "(common/parse.h) so malformed and trailing-junk "
                   "tokens fail as UserError with source context");
    }
}

// ------------------------------------------------------------------
// Rule: byte-cast
//
// reinterpret_cast reads an object as raw bytes — exactly what a
// binary serializer must do, and exactly what silently breaks when a
// struct layout, endianness assumption, or alignment changes anywhere
// else. The binary trace format (src/cluster/trace_binary.cc) is the
// one audited home for byte reinterpretation; everywhere else, value
// punning goes through std::memcpy into a properly-typed object.
// ------------------------------------------------------------------

void
checkByteCast(Ctx &ctx)
{
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        const Token *t = ctx.code[i];
        if (!isIdent(t, "reinterpret_cast"))
            continue;
        report(ctx, "byte-cast", *t,
               "'reinterpret_cast' reinterprets object bytes; raw byte "
               "casts live only in the binary trace serializer "
               "(src/cluster/trace_binary.cc) — use std::memcpy into a "
               "typed value instead");
    }
}

// ------------------------------------------------------------------
// Rule: raw-double-units
// ------------------------------------------------------------------

const std::vector<std::string> kUnitsDirs = {
    "src/carbon/", "src/gsf/", "src/perf/",
};

void
checkRawDoubleUnits(Ctx &ctx)
{
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        if (!isIdent(ctx.code[i], "double"))
            continue;
        // `double [&*]? name` (declaration, parameter, or return
        // type + function name) and `double> name` (map values).
        std::size_t j = i + 1;
        const Token *next = at(ctx, j);
        if (isPunct(next, "&") || isPunct(next, "*") ||
            isPunct(next, ">")) {
            ++j;
        }
        const Token *name = at(ctx, j);
        if (!name || name->kind != TokenKind::Identifier)
            continue;
        std::vector<std::string> words = splitWords(name->text);
        if (!intersects(words, kUnitWords))
            continue;
        if (intersects(words, kDimensionlessWords))
            continue;
        report(ctx, "raw-double-units", *name,
               "'" + std::string(name->text) +
                   "' looks dimensioned (matched: " +
                   joinMatching(words, kUnitWords) +
                   ") but is a raw double; use a strong type from "
                   "common/units.h");
    }
}

// ------------------------------------------------------------------
// Rule: sigsafe
//
// The crash flight-recorder dump TU (src/obs/flightrec_handler*.cc,
// see src/obs/flightrec_state.h) runs inside signal handlers, where
// only async-signal-safe primitives are defined behavior: raw
// write()/open()/close()/rename()/raise(), lock-free atomics, and
// mem/str functions on fixed buffers. Everything that can allocate,
// lock, buffer, or unwind is banned in that TU — a malloc inside a
// SIGSEGV handler deadlocks against the thread that crashed while
// holding the allocator lock. The rule is token-level and absolute
// (no "it's only reachable from the normal path" exceptions): the
// whole point of the dedicated TU is that everything in it is safe
// to call from a handler.
// ------------------------------------------------------------------

const std::set<std::string, std::less<>> kSigUnsafe = {
    // Allocation and deallocation.
    "new", "delete", "malloc", "calloc", "realloc", "free",
    // Buffered stdio and iostream.
    "printf", "fprintf", "sprintf", "snprintf", "vsnprintf", "puts",
    "fputs", "fwrite", "fopen", "cout", "cerr", "clog",
    "ostringstream", "stringstream",
    // Allocating containers (any use allocates on first growth).
    "string", "vector", "map",
    // Locking — the crashed thread may hold the lock.
    "mutex", "lock_guard", "unique_lock", "condition_variable",
    // atexit handlers and stream flushing; handlers use _exit/raise.
    "exit",
    // Unwinding.
    "throw",
};

bool
isFlightHandlerTu(const std::string &relPath)
{
    const std::string prefix = "src/obs/";
    if (relPath.compare(0, prefix.size(), prefix) != 0)
        return false;
    const std::size_t slash = relPath.rfind('/');
    const std::string base =
        slash == std::string::npos ? relPath : relPath.substr(slash + 1);
    const std::string stem = "flightrec_handler";
    return base.compare(0, stem.size(), stem) == 0;
}

void
checkSigsafe(Ctx &ctx)
{
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        const Token *t = ctx.code[i];
        if (t->kind != TokenKind::Identifier || !kSigUnsafe.count(t->text))
            continue;
        report(ctx, "sigsafe", *t,
               "'" + std::string(t->text) +
                   "' is not async-signal-safe; the crash-handler TU "
                   "allows only raw write/open/close/rename/raise, "
                   "lock-free atomics, and fixed-buffer formatting "
                   "(src/obs/flightrec_state.h)");
    }
}

} // namespace

// ------------------------------------------------------------------
// Finding ordering.
// ------------------------------------------------------------------

bool
findingLess(const Finding &a, const Finding &b)
{
    if (a.relPath != b.relPath)
        return a.relPath < b.relPath;
    if (a.line != b.line)
        return a.line < b.line;
    if (a.col != b.col)
        return a.col < b.col;
    if (a.rule != b.rule)
        return a.rule < b.rule;
    return a.message < b.message;
}

// ------------------------------------------------------------------
// Policy.
// ------------------------------------------------------------------

Policy
Policy::repoDefault()
{
    Policy p;
    p.allow("rng-usage", "src/common/rng.h");
    p.allow("rng-usage", "src/common/rng.cc");
    p.allow("error-convention", "src/common/error.h");
    p.allow("error-convention", "src/common/error.cc");
    p.allow("error-convention", "src/common/contracts.h");
    p.allow("error-convention", "src/common/contracts.cc");
    p.allow("concurrency", "src/common/parallel.h");
    p.allow("concurrency", "src/common/parallel.cc");
    p.allow("timing", "src/obs/");
    p.allow("timing", "bench/harness.h");
    p.allow("ledger-events", "src/obs/ledger.h");
    p.allow("byte-cast", "src/cluster/trace_binary.cc");
    return p;
}

void
Policy::allow(const std::string &rule, const std::string &pathOrPrefix)
{
    masks_[rule].push_back(pathOrPrefix);
}

bool
Policy::allowed(const std::string &rule, const std::string &relPath) const
{
    auto it = masks_.find(rule);
    if (it == masks_.end())
        return false;
    for (const std::string &mask : it->second) {
        if (!mask.empty() && mask.back() == '/') {
            if (relPath.compare(0, mask.size(), mask) == 0)
                return true;
        } else if (relPath == mask) {
            return true;
        }
    }
    return false;
}

// ------------------------------------------------------------------
// Suppressions.
// ------------------------------------------------------------------

SuppressionSet::SuppressionSet(const SourceFile &file,
                               const std::set<std::string> &knownRules)
{
    for (const Token &t : file.tokens) {
        if (t.kind != TokenKind::LineComment)
            continue;
        // `// lint-ok: <rule> [<why>]`
        std::string_view text = t.text;
        text.remove_prefix(2);
        std::size_t i = 0;
        while (i < text.size() && (text[i] == ' ' || text[i] == '\t'))
            ++i;
        const std::string_view marker = "lint-ok:";
        if (text.compare(i, marker.size(), marker) != 0)
            continue;
        i += marker.size();
        while (i < text.size() && (text[i] == ' ' || text[i] == '\t'))
            ++i;
        std::size_t begin = i;
        while (i < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[i])) ||
                text[i] == '-' || text[i] == '_')) {
            ++i;
        }
        std::string rule(text.substr(begin, i - begin));
        entries_.push_back({t.line, rule, knownRules.count(rule) > 0});
    }
}

bool
SuppressionSet::suppress(const std::string &rule, int line)
{
    for (Entry &e : entries_) {
        if (e.line == line && e.rule == rule && e.known) {
            e.used = true;
            return true;
        }
    }
    return false;
}

bool
SuppressionSet::suppressAnywhere(const std::string &rule)
{
    for (Entry &e : entries_) {
        if (e.rule == rule && e.known) {
            e.used = true;
            return true;
        }
    }
    return false;
}

std::vector<Finding>
SuppressionSet::auditFindings(const std::string &relPath,
                              const std::set<std::string> &enabled) const
{
    std::vector<Finding> out;
    for (const Entry &e : entries_) {
        if (!e.known) {
            out.push_back({relPath, e.line, 1, "lint-ok",
                           "suppression names unknown rule '" + e.rule +
                               "'"});
        } else if (!e.used && enabled.count(e.rule)) {
            out.push_back({relPath, e.line, 1, "lint-ok",
                           "stale suppression: no '" + e.rule +
                               "' finding on this line"});
        }
    }
    return out;
}

// ------------------------------------------------------------------
// Catalog + per-file driver.
// ------------------------------------------------------------------

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"raw-double-units",
         "Dimensioned quantities in public carbon/gsf/perf headers must "
         "use the strong types of common/units.h, not raw double."},
        {"rng-usage",
         "All randomness flows through gsku::Rng (common/rng.h); raw "
         "rand()/std::random_device/standard engines are banned."},
        {"error-convention",
         "No naked throw outside common/error.* and common/contracts.*; "
         "errors go through GSKU_REQUIRE/GSKU_ASSERT or contract macros."},
        {"pragma-once",
         "Every header starts its include guard with #pragma once."},
        {"concurrency",
         "All concurrency flows through the worker pool in "
         "common/parallel.h; raw std::thread/std::async/.detach() are "
         "banned elsewhere."},
        {"timing",
         "Direct std::chrono clock reads are banned outside src/obs/ "
         "(trace spans, telemetry, the profiler's volatile wall lane in "
         "profile.cc) and bench/harness.h; time through obs::TraceSpan, "
         "obs::ProfileScope, or WallTimer."},
        {"ledger-events",
         "Ledger event names are string literals only inside their "
         "registry (src/obs/ledger.h); elsewhere spell "
         "obs::LedgerEvent::X."},
        {"checked-parse",
         "Raw std::sto*/ato*/strto* conversions are banned; use the "
         "checked full-token parsers in common/parse.h."},
        {"byte-cast",
         "reinterpret_cast is banned outside the binary trace "
         "serializer (src/cluster/trace_binary.cc); pun values through "
         "std::memcpy instead."},
        {"include-layering",
         "Includes must follow the module layering DAG (obs -> common "
         "-> carbon -> perf/reliability -> cluster -> gsf); no upward "
         "or sideways dependencies."},
        {"include-cycle",
         "The include graph must be acyclic."},
        {"determinism-taint",
         "No function may reach a banned determinism source (rand, "
         "clocks, raw threads, raw parses) through other functions; "
         "only the audited wrappers may."},
        {"sigsafe",
         "The crash flight-recorder dump TU (src/obs/flightrec_handler*) "
         "must stay async-signal-safe: no allocation, stdio/iostream, "
         "containers, locking, exit(), or throwing — raw syscalls, "
         "atomics, and fixed-buffer formatting only."},
    };
    return catalog;
}

const std::set<std::string> &
ruleNames()
{
    static const std::set<std::string> names = [] {
        std::set<std::string> s;
        for (const RuleInfo &r : ruleCatalog())
            s.insert(r.name);
        return s;
    }();
    return names;
}

std::vector<Finding>
checkFile(const SourceFile &file, const Policy &policy,
          const std::set<std::string> &enabled, SuppressionSet &sup)
{
    std::vector<const Token *> code;
    code.reserve(file.tokens.size());
    for (const Token &t : file.tokens) {
        if (t.kind != TokenKind::LineComment &&
            t.kind != TokenKind::BlockComment) {
            code.push_back(&t);
        }
    }

    std::vector<Finding> out;
    Ctx ctx{file, code, sup, out};

    auto on = [&](const char *rule) {
        return enabled.count(rule) > 0 &&
               !policy.allowed(rule, file.relPath);
    };

    if (file.isHeader() && on("pragma-once"))
        checkPragmaOnce(ctx);
    if (on("rng-usage"))
        checkRngUsage(ctx);
    if (on("error-convention"))
        checkErrorConvention(ctx);
    if (on("concurrency"))
        checkConcurrency(ctx);
    if (on("timing"))
        checkTiming(ctx);
    if (on("ledger-events"))
        checkLedgerEvents(ctx);
    if (on("checked-parse"))
        checkCheckedParse(ctx);
    if (on("byte-cast"))
        checkByteCast(ctx);
    if (on("sigsafe") && isFlightHandlerTu(file.relPath))
        checkSigsafe(ctx);
    if (file.isHeader() && on("raw-double-units")) {
        bool inUnitsDir = false;
        for (const std::string &dir : kUnitsDirs) {
            if (file.relPath.compare(0, dir.size(), dir) == 0)
                inUnitsDir = true;
        }
        if (inUnitsDir)
            checkRawDoubleUnits(ctx);
    }
    return out;
}

} // namespace gsku::analyze
