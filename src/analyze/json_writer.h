/**
 * @file
 * Minimal streaming JSON writer for the analyzer's machine-readable
 * outputs (findings JSON, SARIF, include-graph dump). Emits compact,
 * deterministic JSON: keys in the order written, no whitespace
 * dependence on locale, full escaping of control characters.
 */
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gsku::analyze {

/** JSON-escape `s` (quotes not included). */
std::string jsonEscape(std::string_view s);

/** Comma/nesting bookkeeping for hand-rolled JSON emission. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Writes `"name":` and expects a value/beginX next. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(std::size_t v)
    {
        return value(static_cast<std::int64_t>(v));
    }
    JsonWriter &value(bool v);

  private:
    std::ostream &out_;
    /** true = a value was already written at this nesting level. */
    std::vector<bool> hasItem_;
    bool pendingKey_ = false;

    void separator();
};

} // namespace gsku::analyze
