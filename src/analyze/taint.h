/**
 * @file
 * Determinism-taint pass: the token rules catch a banned construct on
 * the line where it is spelled; this pass catches the functions that
 * *reach* one through other functions — the wrapper around
 * `std::rand()` is caught by rng-usage, and every caller of that
 * wrapper (transitively, across files) is caught here.
 *
 * Mechanics (docs/analysis.md "Determinism taint"):
 *
 *  1. Function definitions are recognized heuristically from the
 *     token stream (name, definition line, body extent).
 *  2. A function whose body carries a finding from one of the four
 *     determinism rules (rng-usage, timing, concurrency,
 *     checked-parse) is directly tainted. Suppressed findings do not
 *     seed taint — the `lint-ok` vouched for the wrapper — and the
 *     audited homes (rng.h, parallel.h, obs/) produce no findings,
 *     so sanctioned wrappers never taint their callers.
 *  3. Taint propagates from callee to caller over a name-matched
 *     call graph spanning every analyzed file. Only *indirectly*
 *     tainted functions are reported (the direct ones already carry
 *     their token-rule finding), each with its shortest call chain
 *     to the banned source.
 *
 * Suppress with `// lint-ok: determinism-taint <why>` on the
 * function's definition line.
 */
#pragma once

#include <string>
#include <vector>

#include "analyze/rules.h"
#include "analyze/source.h"

namespace gsku::analyze {

/** One heuristically-recognized function definition. */
struct FunctionDef
{
    std::string name;      ///< Unqualified name (last identifier).
    int fileIndex = -1;    ///< Index into the analyzed file list.
    int line = 0;          ///< Line of the name token.
    int bodyBeginLine = 0; ///< Line of the opening brace.
    int bodyEndLine = 0;   ///< Line of the closing brace.
    std::vector<std::string> calls; ///< Unqualified callee names.
};

/** Extract function definitions + their callee names from one file.
 *  Exposed for tests; runTaint() is the rule entry point. */
std::vector<FunctionDef> extractFunctions(const SourceFile &file,
                                          int fileIndex);

/**
 * Run the taint pass. `determinismFindings` are the (unsuppressed)
 * findings of the four determinism rules, used as taint seeds.
 */
std::vector<Finding> runTaint(
    const std::vector<const SourceFile *> &files,
    const std::vector<Finding> &determinismFindings,
    std::vector<SuppressionSet *> &sups);

} // namespace gsku::analyze
