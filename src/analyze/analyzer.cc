#include "analyze/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <ostream>

#include "analyze/json_writer.h"
#include "analyze/taint.h"
#include "common/error.h"

namespace gsku::analyze {

AnalysisResult
analyze(const AnalyzerOptions &options)
{
    // Resolve the rule set.
    std::set<std::string> enabled =
        options.enabledRules.empty() ? ruleNames() : options.enabledRules;
    for (const std::string &r : enabled)
        GSKU_REQUIRE(ruleNames().count(r), "unknown rule: " + r);
    for (const std::string &r : options.disabledRules) {
        GSKU_REQUIRE(ruleNames().count(r), "unknown rule: " + r);
        enabled.erase(r);
    }

    Policy policy = Policy::repoDefault();
    for (const auto &[rule, path] : options.extraAllows) {
        GSKU_REQUIRE(ruleNames().count(rule),
                     "unknown rule in mask: " + rule);
        policy.allow(rule, path);
    }

    // Load and lex everything up front: the graph rules and the taint
    // pass need the whole file set.
    std::vector<std::string> paths =
        options.paths.empty() ? std::vector<std::string>{"src"}
                              : options.paths;
    // Paths are interpreted relative to the caller's cwd, but module
    // classification is anchored at the root.
    AnalysisResult result;
    for (const std::string &p : collectFiles(paths))
        result.sources.push_back(loadSource(p, options.root));

    std::vector<const SourceFile *> files;
    files.reserve(result.sources.size());
    for (const auto &f : result.sources)
        files.push_back(f.get());

    // Per-file suppression sets live for the whole run: the graph and
    // taint rules mark suppressions used too, and the audit must see
    // the union.
    std::vector<std::unique_ptr<SuppressionSet>> ownedSups;
    std::vector<SuppressionSet *> sups;
    for (const SourceFile *f : files) {
        ownedSups.push_back(
            std::make_unique<SuppressionSet>(*f, ruleNames()));
        sups.push_back(ownedSups.back().get());
    }

    result.fileCount = files.size();
    result.ruleCount = enabled.size();

    // 1. Token rules.
    std::vector<Finding> determinismFindings;
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::vector<Finding> fs =
            checkFile(*files[i], policy, enabled, *sups[i]);
        for (Finding &f : fs) {
            if (f.rule == "rng-usage" || f.rule == "timing" ||
                f.rule == "concurrency" || f.rule == "checked-parse") {
                determinismFindings.push_back(f);
            }
            result.findings.push_back(std::move(f));
        }
    }

    // 2. Include-graph rules.
    result.graph = std::make_unique<IncludeGraph>(IncludeGraph::build(files));
    if (enabled.count("include-layering")) {
        std::vector<Finding> fs = result.graph->layeringFindings(sups);
        result.findings.insert(result.findings.end(), fs.begin(), fs.end());
    }
    if (enabled.count("include-cycle")) {
        std::vector<Finding> fs = result.graph->cycleFindings();
        result.findings.insert(result.findings.end(), fs.begin(), fs.end());
    }

    // 3. Determinism taint (seeded by the unsuppressed token-rule
    // findings, so it reports only what they cannot: indirect reach).
    if (enabled.count("determinism-taint")) {
        std::vector<Finding> fs =
            runTaint(files, determinismFindings, sups);
        result.findings.insert(result.findings.end(), fs.begin(), fs.end());
    }

    // 4. Suppression audit, last: every lint-ok must have earned its
    // keep against one of the passes above.
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::vector<Finding> fs =
            sups[i]->auditFindings(files[i]->relPath, enabled);
        result.findings.insert(result.findings.end(), fs.begin(), fs.end());
    }

    std::sort(result.findings.begin(), result.findings.end(), findingLess);
    return result;
}

void
writeText(std::ostream &out, const AnalysisResult &result)
{
    for (const Finding &f : result.findings) {
        out << f.relPath << ':' << f.line << ": [" << f.rule << "] "
            << f.message << '\n';
    }
    if (!result.findings.empty()) {
        out << "\ngsku_analyze: " << result.findings.size()
            << " finding(s) in " << result.fileCount << " file(s)\n";
    } else {
        out << "gsku_analyze: clean (" << result.fileCount << " files, "
            << result.ruleCount << " rules)\n";
    }
}

void
writeFindingsJson(std::ostream &out, const AnalysisResult &result)
{
    JsonWriter w(out);
    w.beginObject();
    w.key("tool").value("gsku_analyze");
    w.key("files").value(result.fileCount);
    w.key("rules").value(result.ruleCount);
    w.key("findings").beginArray();
    for (const Finding &f : result.findings) {
        w.beginObject();
        w.key("path").value(f.relPath);
        w.key("line").value(f.line);
        w.key("col").value(f.col);
        w.key("rule").value(f.rule);
        w.key("message").value(f.message);
        w.endObject();
    }
    w.endArray();
    w.key("count").value(result.findings.size());
    w.endObject();
    out << '\n';
}

void
writeSarif(std::ostream &out, const AnalysisResult &result,
           const std::string &root)
{
    std::error_code ec;
    std::filesystem::path abs = std::filesystem::absolute(root, ec);
    std::string rootUri = "file://" + abs.generic_string();
    if (rootUri.empty() || rootUri.back() != '/')
        rootUri += '/';

    JsonWriter w(out);
    w.beginObject();
    w.key("$schema")
        .value("https://json.schemastore.org/sarif-2.1.0.json");
    w.key("version").value("2.1.0");
    w.key("runs").beginArray();
    w.beginObject();

    w.key("tool").beginObject();
    w.key("driver").beginObject();
    w.key("name").value("gsku_analyze");
    w.key("version").value("1.0.0");
    w.key("rules").beginArray();
    for (const RuleInfo &r : ruleCatalog()) {
        w.beginObject();
        w.key("id").value(r.name);
        w.key("shortDescription").beginObject();
        w.key("text").value(r.summary);
        w.endObject();
        w.key("defaultConfiguration").beginObject();
        w.key("level").value("error");
        w.endObject();
        w.endObject();
    }
    // The suppression audit reports under its own pseudo-rule id.
    w.beginObject();
    w.key("id").value("lint-ok");
    w.key("shortDescription").beginObject();
    w.key("text").value(
        "Every `// lint-ok:` suppression must name a known rule and "
        "silence a real finding.");
    w.endObject();
    w.key("defaultConfiguration").beginObject();
    w.key("level").value("error");
    w.endObject();
    w.endObject();
    w.endArray();
    w.endObject(); // driver
    w.endObject(); // tool

    w.key("originalUriBaseIds").beginObject();
    w.key("SRCROOT").beginObject();
    w.key("uri").value(rootUri);
    w.endObject();
    w.endObject();

    w.key("results").beginArray();
    for (const Finding &f : result.findings) {
        w.beginObject();
        w.key("ruleId").value(f.rule);
        w.key("level").value("error");
        w.key("message").beginObject();
        w.key("text").value(f.message);
        w.endObject();
        w.key("locations").beginArray();
        w.beginObject();
        w.key("physicalLocation").beginObject();
        w.key("artifactLocation").beginObject();
        w.key("uri").value(f.relPath);
        w.key("uriBaseId").value("SRCROOT");
        w.endObject();
        w.key("region").beginObject();
        w.key("startLine").value(f.line);
        w.key("startColumn").value(f.col > 0 ? f.col : 1);
        w.endObject();
        w.endObject(); // physicalLocation
        w.endObject();
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.endObject(); // run
    w.endArray();
    w.endObject();
    out << '\n';
}

} // namespace gsku::analyze
