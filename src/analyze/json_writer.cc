#include "analyze/json_writer.h"

#include <cstdio>

namespace gsku::analyze {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separator()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasItem_.empty()) {
        if (hasItem_.back())
            out_ << ',';
        hasItem_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    out_ << '{';
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    hasItem_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    out_ << '[';
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    hasItem_.pop_back();
    out_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    separator();
    out_ << '"' << jsonEscape(name) << "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    separator();
    out_ << '"' << jsonEscape(s) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    out_ << (v ? "true" : "false");
    return *this;
}

} // namespace gsku::analyze
