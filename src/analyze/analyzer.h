/**
 * @file
 * Analyzer orchestration: collect files, run the token rules, the
 * include-graph rules, and the determinism-taint pass, audit
 * suppressions, and render the result as human text, findings JSON,
 * or SARIF 2.1.0 (docs/analysis.md).
 */
#pragma once

#include <iosfwd>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/include_graph.h"
#include "analyze/rules.h"
#include "analyze/source.h"

namespace gsku::analyze {

struct AnalyzerOptions
{
    /** Repo root: relative paths, module classification, and the
     *  policy table are all anchored here. */
    std::string root = ".";

    /** Files or directories to analyze (default: src). */
    std::vector<std::string> paths;

    /** Rules to run; empty = the full catalog. */
    std::set<std::string> enabledRules;

    /** Rules to subtract after enabledRules is resolved. */
    std::set<std::string> disabledRules;

    /** Extra per-tree masks: (rule, exact file or 'dir/' prefix). */
    std::vector<std::pair<std::string, std::string>> extraAllows;
};

struct AnalysisResult
{
    std::vector<Finding> findings;      ///< Sorted by findingLess.
    std::size_t fileCount = 0;
    std::size_t ruleCount = 0;          ///< Rules that actually ran.
    /** The analyzed sources. graph points into these, so they live
     *  as long as the result does. */
    std::vector<std::unique_ptr<SourceFile>> sources;
    std::unique_ptr<IncludeGraph> graph;

    bool clean() const { return findings.empty(); }
};

/** Run the analysis. Throws UserError for unknown rules or unreadable
 *  paths. */
AnalysisResult analyze(const AnalyzerOptions &options);

/** `path:line: [rule] message` lines plus a summary, lint.py-style. */
void writeText(std::ostream &out, const AnalysisResult &result);

/** Deterministic findings JSON (root-relative paths only, no
 *  absolute paths or timestamps — diffable and golden-testable). */
void writeFindingsJson(std::ostream &out, const AnalysisResult &result);

/** SARIF 2.1.0 with the rule catalog as tool.driver.rules and
 *  SRCROOT-relative artifact locations. */
void writeSarif(std::ostream &out, const AnalysisResult &result,
                const std::string &root);

} // namespace gsku::analyze
