#include "analyze/source.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace fs = std::filesystem;

namespace gsku::analyze {

namespace {

std::string
generic(const fs::path &p)
{
    return p.lexically_normal().generic_string();
}

} // namespace

bool
SourceFile::isHeader() const
{
    return relPath.size() >= 2 &&
           relPath.compare(relPath.size() - 2, 2, ".h") == 0;
}

std::string
moduleOf(const std::string &relPath)
{
    const std::string src = "src/";
    if (relPath.compare(0, src.size(), src) == 0) {
        std::size_t slash = relPath.find('/', src.size());
        if (slash != std::string::npos)
            return relPath.substr(src.size(), slash - src.size());
        return "";
    }
    for (const char *tree : {"bench", "examples", "tools", "tests"}) {
        std::string prefix = std::string(tree) + "/";
        if (relPath.compare(0, prefix.size(), prefix) == 0)
            return tree;
    }
    return "";
}

std::string
relativeTo(const std::string &root, const std::string &path)
{
    std::error_code ec;
    fs::path absRoot = fs::weakly_canonical(root, ec);
    if (ec)
        absRoot = fs::path(root);
    fs::path absPath = fs::weakly_canonical(path, ec);
    if (ec)
        absPath = fs::path(path);
    fs::path rel = absPath.lexically_relative(absRoot);
    std::string s = generic(rel);
    if (s.empty() || s == "." || s.compare(0, 2, "..") == 0)
        return generic(absPath);
    return s;
}

std::vector<std::string>
collectFiles(const std::vector<std::string> &paths)
{
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        fs::path path(p);
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(path, ec)) {
                if (!entry.is_regular_file())
                    continue;
                std::string ext = entry.path().extension().string();
                if (ext == ".h" || ext == ".cc")
                    files.push_back(generic(entry.path()));
            }
            GSKU_REQUIRE(!ec, "cannot walk directory: " + p);
        } else if (fs::is_regular_file(path, ec)) {
            files.push_back(generic(path));
        } else {
            GSKU_REQUIRE(false, "no such file or directory: " + p);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

std::unique_ptr<SourceFile>
loadSource(const std::string &path, const std::string &root)
{
    std::ifstream in(path, std::ios::binary);
    GSKU_REQUIRE(in.good(), "cannot read file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();

    auto file = std::make_unique<SourceFile>();
    file->path = path;
    file->relPath = relativeTo(root, path);
    file->module = moduleOf(file->relPath);
    file->content = buf.str();
    file->tokens = lex(file->content);
    return file;
}

} // namespace gsku::analyze
