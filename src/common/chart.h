/**
 * @file
 * ASCII line charts for the figure-reproduction benches: a terminal
 * rendering of y-vs-x series so `bench/fig*` binaries regenerate the
 * paper's *figures*, not only their underlying numbers.
 */
#pragma once

#include <string>
#include <vector>

namespace gsku {

/** One named series of (x, y) points. Points need not be sorted. */
struct ChartSeries
{
    std::string name;
    std::vector<std::pair<double, double>> points;

    /** Glyph used for this series' points ('*', 'o', '+', ...). */
    char glyph = '*';
};

/** Plot configuration. */
struct ChartOptions
{
    int width = 68;             ///< Plot-area columns.
    int height = 18;            ///< Plot-area rows.
    std::string x_label;
    std::string y_label;
    bool y_from_zero = true;    ///< Anchor the y axis at zero.

    /** Vertical markers drawn as '|' at given x positions with labels
     *  listed under the chart (the Fig. 11 region lines). */
    std::vector<std::pair<double, std::string>> x_markers;
};

/**
 * Render the series into a fixed-size ASCII grid with axes, tick
 * labels, a legend, and optional vertical markers. Series are drawn in
 * order; later series overwrite earlier glyphs on collisions.
 * Non-finite y values (e.g. saturated latencies) are skipped.
 */
std::string renderChart(const std::vector<ChartSeries> &series,
                        const ChartOptions &options = ChartOptions{});

} // namespace gsku
