#include "common/profile_read.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>

#include "common/error.h"

namespace gsku::obs {

namespace {

/**
 * Offset-tracking scanner for the fixed gsku-profile-v1 JSON layout.
 * The writer (obs/profile.cc) is canonical — keys in one fixed order,
 * no escapes — so the reader insists on exactly that shape and every
 * violation names the byte offset where the document went wrong.
 */
struct Scanner
{
    const std::string &path;
    const std::string &bytes;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        GSKU_REQUIRE(false, "profile '" + path + "': " + msg);
    }

    [[noreturn]] void
    failHere(const std::string &msg) const
    {
        fail(msg + " at offset " + std::to_string(pos));
    }

    void
    skipWs()
    {
        while (pos < bytes.size() &&
               (bytes[pos] == ' ' || bytes[pos] == '\n' ||
                bytes[pos] == '\r' || bytes[pos] == '\t')) {
            ++pos;
        }
    }

    void
    expect(char c)
    {
        skipWs();
        if (pos >= bytes.size() || bytes[pos] != c) {
            failHere(std::string("expected '") + c + "'");
        }
        ++pos;
    }

    /** `"key": ` — the fixed key layout makes a wrong key a named
     *  structural error, not a silently ignored field. */
    void
    expectKey(const char *key)
    {
        const std::string got = parseString();
        if (got != key) {
            failHere("expected key \"" + std::string(key) +
                     "\", found \"" + got + "\"");
        }
        expect(':');
    }

    std::string
    parseString()
    {
        expect('"');
        const std::size_t start = pos;
        while (pos < bytes.size() && bytes[pos] != '"') {
            if (bytes[pos] == '\\' ||
                static_cast<unsigned char>(bytes[pos]) < 0x20) {
                failHere("unsupported character in string");
            }
            ++pos;
        }
        if (pos >= bytes.size()) {
            failHere("unterminated string");
        }
        const std::string out = bytes.substr(start, pos - start);
        ++pos;   // Closing quote.
        return out;
    }

    std::uint64_t
    parseU64()
    {
        skipWs();
        if (pos >= bytes.size() || bytes[pos] < '0' ||
            bytes[pos] > '9') {
            failHere("expected unsigned integer");
        }
        std::uint64_t v = 0;
        while (pos < bytes.size() && bytes[pos] >= '0' &&
               bytes[pos] <= '9') {
            const std::uint64_t digit =
                static_cast<std::uint64_t>(bytes[pos] - '0');
            if (v > (~0ull - digit) / 10) {
                failHere("integer overflows u64");
            }
            v = v * 10 + digit;
            ++pos;
        }
        return v;
    }

    bool
    parseBool()
    {
        skipWs();
        if (bytes.compare(pos, 4, "true") == 0) {
            pos += 4;
            return true;
        }
        if (bytes.compare(pos, 5, "false") == 0) {
            pos += 5;
            return false;
        }
        failHere("expected true or false");
    }
};

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    GSKU_REQUIRE(in.is_open(), "profile '" + path + "': cannot open");
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/** Parent path of a ';'-joined domain path ("" for top level). */
std::string
parentOf(const std::string &path)
{
    const std::size_t cut = path.rfind(';');
    return cut == std::string::npos ? std::string() : path.substr(0, cut);
}

} // namespace

ProfileData
readProfile(const std::string &path)
{
    const std::string bytes = readWholeFile(path);
    Scanner s{path, bytes};
    ProfileData data;

    s.expect('{');
    s.expectKey("schema");
    const std::size_t schema_off = s.pos;
    const std::string schema = s.parseString();
    if (schema != "gsku-profile-v1") {
        GSKU_REQUIRE(false, "profile '" + path +
                                "': unsupported schema \"" + schema +
                                "\" at offset " +
                                std::to_string(schema_off));
    }
    s.expect(',');
    s.expectKey("program");
    data.program = s.parseString();
    s.expect(',');
    s.expectKey("wall_lane");
    data.wall_lane = s.parseBool();
    s.expect(',');
    s.expectKey("total_units");
    data.total_units = s.parseU64();
    s.expect(',');
    s.expectKey("domains");
    s.expect('[');

    s.skipWs();
    if (s.pos < bytes.size() && bytes[s.pos] == ']') {
        ++s.pos;
    } else {
        for (;;) {
            const std::size_t entry_off = s.pos;
            ProfileEntry entry;
            s.expect('{');
            s.expectKey("path");
            entry.path = s.parseString();
            if (entry.path.empty()) {
                s.fail("empty domain path at offset " +
                       std::to_string(entry_off));
            }
            s.expect(',');
            s.expectKey("self_units");
            entry.self_units = s.parseU64();
            s.expect(',');
            s.expectKey("total_units");
            entry.total_units = s.parseU64();
            s.expect(',');
            s.expectKey("scopes");
            entry.scopes = s.parseU64();
            s.skipWs();
            if (s.pos < bytes.size() && bytes[s.pos] == ',') {
                if (!data.wall_lane) {
                    s.failHere("wall_ns present without wall_lane");
                }
                s.expect(',');
                s.expectKey("wall_ns");
                entry.wall_ns = s.parseU64();
            } else if (data.wall_lane) {
                s.failHere("missing wall_ns under wall_lane");
            }
            s.expect('}');

            if (!data.entries.empty() &&
                data.entries.back().path >= entry.path) {
                s.fail("unsorted domain path \"" + entry.path +
                       "\" at offset " + std::to_string(entry_off));
            }
            if (entry.total_units < entry.self_units) {
                s.fail("total_units below self_units for \"" +
                       entry.path + "\" at offset " +
                       std::to_string(entry_off));
            }
            data.entries.push_back(std::move(entry));

            s.skipWs();
            if (s.pos < bytes.size() && bytes[s.pos] == ',') {
                ++s.pos;
                continue;
            }
            s.expect(']');
            break;
        }
    }

    s.expect(',');
    s.expectKey("checksum_fnv1a64");
    const std::size_t checksum_off = s.pos;
    const std::string checksum_hex = s.parseString();
    if (checksum_hex.size() != 16) {
        s.fail("checksum must be 16 hex digits at offset " +
               std::to_string(checksum_off));
    }
    data.checksum = 0;
    for (char c : checksum_hex) {
        int nibble;
        if (c >= '0' && c <= '9') {
            nibble = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            nibble = 10 + (c - 'a');
        } else {
            s.fail("checksum must be 16 hex digits at offset " +
                   std::to_string(checksum_off));
        }
        data.checksum = (data.checksum << 4) |
                        static_cast<std::uint64_t>(nibble);
    }
    s.expect('}');
    s.skipWs();
    if (s.pos != bytes.size()) {
        s.failHere("trailing bytes");
    }

    // ----- Semantic validation: the totals must be internally
    // consistent and the deterministic-lane checksum must match. -----
    std::uint64_t self_sum = 0;
    std::map<std::string, std::uint64_t> child_totals;
    for (const ProfileEntry &entry : data.entries) {
        self_sum += entry.self_units;
        if (entry.path != "(unscoped)") {
            child_totals[parentOf(entry.path)] += entry.total_units;
        }
    }
    if (self_sum != data.total_units) {
        s.fail("total_units " + std::to_string(data.total_units) +
               " does not match the sum of self_units " +
               std::to_string(self_sum));
    }
    for (const ProfileEntry &entry : data.entries) {
        const auto it = child_totals.find(entry.path);
        const std::uint64_t children =
            it == child_totals.end() ? 0 : it->second;
        if (entry.total_units != entry.self_units + children) {
            s.fail("inconsistent total_units for \"" + entry.path +
                   "\": " + std::to_string(entry.total_units) +
                   " != self " + std::to_string(entry.self_units) +
                   " + children " + std::to_string(children));
        }
    }

    ProfileSnapshot snap;
    snap.entries = data.entries;
    const std::uint64_t computed = profileChecksum(snap);
    if (computed != data.checksum) {
        s.fail("checksum mismatch: file records " + checksum_hex +
               ", deterministic lane hashes to " +
               [&] {
                   char buf[17];
                   std::snprintf(buf, sizeof(buf), "%016llx",
                                 static_cast<unsigned long long>(
                                     computed));
                   return std::string(buf);
               }());
    }
    return data;
}

} // namespace gsku::obs
