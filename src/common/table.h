/**
 * @file
 * Console table rendering for the reproduction harnesses. Each bench binary
 * prints the same rows the paper's tables/figures report; this renderer
 * keeps that output aligned and diffable.
 */
#pragma once

#include <string>
#include <vector>

namespace gsku {

/** Horizontal alignment of a column's cells. */
enum class Align { Left, Right };

/**
 * A simple monospace table: set headers, append rows of strings, render.
 * Column widths are computed from content; headers get a separator rule.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers,
                   std::vector<Align> aligns = {});

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    std::size_t rowCount() const { return rows_.size(); }

    /** Render the full table as a string (trailing newline included). */
    std::string render() const;

    /** Format a double with the given precision; helper for row building. */
    static std::string num(double v, int precision = 2);

    /** Format a ratio as a percentage string, e.g. 0.28 -> "28%". */
    static std::string percent(double ratio, int precision = 0);

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gsku
