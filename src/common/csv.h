/**
 * @file
 * Minimal CSV writer used by benches/examples to dump series for plotting.
 */
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gsku {

/** Streams rows to an ostream with RFC-4180-style quoting when needed. */
class CsvWriter
{
  public:
    /** The writer borrows the stream; it must outlive the writer. */
    explicit CsvWriter(std::ostream &out);

    void writeHeader(const std::vector<std::string> &names);
    void writeRow(const std::vector<std::string> &cells);

    /** Convenience: write a row of doubles with full precision. */
    void writeRow(const std::vector<double> &values);

  private:
    std::ostream &out_;
    std::size_t columns_ = 0;
    bool header_written_ = false;

    void emit(const std::vector<std::string> &cells);
};

} // namespace gsku
