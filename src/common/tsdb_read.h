/**
 * @file
 * Validating readers for `gsku-tsdb-v1` telemetry files (format and
 * writer: obs/timeseries.h). They live in common/, not obs/, because
 * strict validation throws UserError with named byte offsets and obs
 * — the bottom module of the layering DAG — must not include the
 * error machinery; common may include obs.
 */
#pragma once

#include <string>

#include "obs/timeseries.h"

namespace gsku::obs {

/**
 * Read and fully validate a tsdb file: magic, version, structural
 * sizes, frame layout, series references, strictly increasing logical
 * clock, footer counts, and both FNV-1a checksums (the frames digest
 * covers the deterministic lane only). Throws UserError naming the
 * offending byte offset on any violation.
 */
TimeseriesData readTsdb(const std::string &path);

/**
 * Tolerant tail read for following a growing file: validates the
 * header strictly (throws UserError when it is invalid), then parses
 * frames until the first incomplete or unrecognized frame and stops
 * there. `complete` is true only when a verified footer terminates
 * the file; `bytes_parsed` reports the consumed prefix so a follower
 * can poll for growth.
 */
TimeseriesData readTsdbTail(const std::string &path);

} // namespace gsku::obs
