#include "common/chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace gsku {

namespace {

std::string
formatTick(double v)
{
    std::ostringstream out;
    if (std::abs(v) >= 1000.0) {
        out << std::fixed << std::setprecision(0) << v;
    } else if (std::abs(v) >= 1.0 || v == 0.0) {
        out << std::fixed << std::setprecision(1) << v;
    } else {
        out << std::fixed << std::setprecision(3) << v;
    }
    return out.str();
}

} // namespace

std::string
renderChart(const std::vector<ChartSeries> &series,
            const ChartOptions &options)
{
    GSKU_REQUIRE(!series.empty(), "chart needs at least one series");
    GSKU_REQUIRE(options.width >= 16 && options.height >= 4,
                 "chart area too small");

    // Data bounds over finite points.
    double x_min = std::numeric_limits<double>::infinity();
    double x_max = -x_min;
    double y_min = options.y_from_zero
                       ? 0.0
                       : std::numeric_limits<double>::infinity();
    double y_max = -std::numeric_limits<double>::infinity();
    long finite_points = 0;
    for (const ChartSeries &s : series) {
        for (const auto &[x, y] : s.points) {
            if (!std::isfinite(x) || !std::isfinite(y)) {
                continue;
            }
            ++finite_points;
            x_min = std::min(x_min, x);
            x_max = std::max(x_max, x);
            y_min = std::min(y_min, y);
            y_max = std::max(y_max, y);
        }
    }
    for (const auto &[x, label] : options.x_markers) {
        x_min = std::min(x_min, x);
        x_max = std::max(x_max, x);
    }
    GSKU_REQUIRE(finite_points > 0, "chart has no finite points");
    if (x_max == x_min) {
        x_max = x_min + 1.0;
    }
    if (y_max <= y_min) {
        y_max = y_min + 1.0;
    }

    const int w = options.width;
    const int h = options.height;
    std::vector<std::string> grid(h, std::string(w, ' '));

    auto col_of = [&](double x) {
        return static_cast<int>(std::lround(
            (x - x_min) / (x_max - x_min) * (w - 1)));
    };
    auto row_of = [&](double y) {
        // Row 0 is the top of the plot.
        return h - 1 -
               static_cast<int>(std::lround(
                   (y - y_min) / (y_max - y_min) * (h - 1)));
    };

    // Vertical markers first so data overwrites them.
    for (const auto &[x, label] : options.x_markers) {
        const int col = col_of(x);
        for (int row = 0; row < h; ++row) {
            grid[row][col] = '|';
        }
    }

    for (const ChartSeries &s : series) {
        for (const auto &[x, y] : s.points) {
            if (!std::isfinite(x) || !std::isfinite(y)) {
                continue;
            }
            const int col = std::clamp(col_of(x), 0, w - 1);
            const int row = std::clamp(row_of(y), 0, h - 1);
            grid[row][col] = s.glyph;
        }
    }

    // Assemble with a y-axis gutter.
    const std::string top_tick = formatTick(y_max);
    const std::string bottom_tick = formatTick(y_min);
    const std::size_t gutter =
        std::max(top_tick.size(), bottom_tick.size()) + 1;

    std::ostringstream out;
    if (!options.y_label.empty()) {
        out << std::string(gutter, ' ') << options.y_label << '\n';
    }
    for (int row = 0; row < h; ++row) {
        std::string tick;
        if (row == 0) {
            tick = top_tick;
        } else if (row == h - 1) {
            tick = bottom_tick;
        } else if (row == h / 2) {
            tick = formatTick(y_min + (y_max - y_min) * 0.5);
        }
        out << std::setw(static_cast<int>(gutter) - 1) << tick << '|'
            << grid[row] << '\n';
    }
    out << std::string(gutter - 1, ' ') << '+' << std::string(w, '-')
        << '\n';
    out << std::string(gutter, ' ') << formatTick(x_min)
        << std::string(
               std::max<std::size_t>(
                   1, w - formatTick(x_min).size() -
                          formatTick(x_max).size()),
               ' ')
        << formatTick(x_max);
    if (!options.x_label.empty()) {
        out << "  " << options.x_label;
    }
    out << '\n';

    out << std::string(gutter, ' ') << "legend:";
    for (const ChartSeries &s : series) {
        out << "  " << s.glyph << " = " << s.name;
    }
    out << '\n';
    for (const auto &[x, label] : options.x_markers) {
        out << std::string(gutter, ' ') << "| at " << formatTick(x)
            << ": " << label << '\n';
    }
    return out.str();
}

} // namespace gsku
