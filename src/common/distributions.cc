#include "common/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace gsku {

Exponential::Exponential(double rate) : rate_(rate)
{
    GSKU_REQUIRE(rate > 0.0, "Exponential rate must be positive");
}

double
Exponential::sample(Rng &rng) const
{
    double u;
    do {
        u = rng.uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate_;
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma)
{
    GSKU_REQUIRE(sigma > 0.0, "LogNormal sigma must be positive");
}

LogNormal
LogNormal::fromMedianAndSigma(double median, double sigma)
{
    GSKU_REQUIRE(median > 0.0, "LogNormal median must be positive");
    return LogNormal(std::log(median), sigma);
}

double
LogNormal::sample(Rng &rng) const
{
    return std::exp(mu_ + sigma_ * rng.normal());
}

double
LogNormal::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double
LogNormal::median() const
{
    return std::exp(mu_);
}

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi)
{
    GSKU_REQUIRE(alpha > 0.0, "BoundedPareto alpha must be positive");
    GSKU_REQUIRE(0.0 < lo && lo < hi, "BoundedPareto requires 0 < lo < hi");
}

double
BoundedPareto::sample(Rng &rng) const
{
    // Inverse CDF of the bounded Pareto.
    const double u = rng.uniform();
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

Discrete::Discrete(std::vector<double> weights)
{
    GSKU_REQUIRE(!weights.empty(), "Discrete needs at least one weight");
    cumulative_.reserve(weights.size());
    double running = 0.0;
    for (double w : weights) {
        GSKU_REQUIRE(w >= 0.0, "Discrete weights must be non-negative");
        running += w;
        cumulative_.push_back(running);
    }
    total_ = running;
    GSKU_REQUIRE(total_ > 0.0, "Discrete weights must not all be zero");
}

std::size_t
Discrete::sample(Rng &rng) const
{
    const double u = rng.uniform() * total_;
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const std::size_t idx = static_cast<std::size_t>(
        std::distance(cumulative_.begin(), it));
    return std::min(idx, cumulative_.size() - 1);
}

double
Discrete::probability(std::size_t i) const
{
    GSKU_REQUIRE(i < cumulative_.size(), "Discrete index out of range");
    const double prev = i == 0 ? 0.0 : cumulative_[i - 1];
    return (cumulative_[i] - prev) / total_;
}

} // namespace gsku
