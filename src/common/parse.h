/**
 * @file
 * Checked full-token numeric parsing.
 *
 * The std::sto* family has two failure modes that bit this repo's
 * readers: malformed cells throw raw std::invalid_argument /
 * std::out_of_range past the GSKU_REQUIRE error convention, and
 * tokens with trailing junk ("12abc") parse silently as 12. Every
 * parser here consumes the ENTIRE token or throws UserError, and the
 * error message carries file/line/field context supplied by the
 * caller, so a bad cell in row 40000 of a trace names itself.
 *
 * These are the only sanctioned entry points for text→number
 * conversion outside this file; tools/lint.py (rule `checked-parse`)
 * bans raw std::stoi/stod/atof/strtol elsewhere in src/.
 */
#pragma once

#include <cstdint>
#include <string>

namespace gsku {

/**
 * Where a token came from, for error messages. All fields optional;
 * an empty context still yields a usable "cannot parse ..." error.
 */
struct ParseContext
{
    std::string source;  ///< File name or input label.
    int line = 0;        ///< 1-based line number; 0 = unknown.
    std::string field;   ///< Column or field name.
};

/** Renders "source, line N, field 'f': " (omitting empty parts). */
std::string describe(const ParseContext &ctx);

/**
 * Full-token conversions. Each throws UserError (never a raw
 * std::logic_error) when the token is empty, is not a number, has
 * trailing junk, or is out of range for the target type.
 * Leading/trailing whitespace counts as junk: "12 " does not parse.
 */
int parseInt(const std::string &token, const ParseContext &ctx = {});
long parseLong(const std::string &token, const ParseContext &ctx = {});
std::uint64_t parseU64(const std::string &token,
                       const ParseContext &ctx = {});
double parseDouble(const std::string &token,
                   const ParseContext &ctx = {});

} // namespace gsku
