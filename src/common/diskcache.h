/**
 * @file
 * Content-addressed on-disk record cache — the storage half of the
 * persistent evaluation cache (gsf/eval_cache.h holds the keys and
 * payload encodings; this layer knows nothing about what it stores).
 *
 * Layout: one record per file under the cache directory,
 *
 *   <dir>/<16-hex-key>.rec        header line + opaque payload bytes
 *   <dir>/journal.txt             LRU order, schema-tagged
 *
 * A record file is a single JSON header line
 *
 *   {"schema": "gsku-evalcache-v1", "key": "<16-hex>", "payload_bytes": N}
 *
 * followed by exactly N payload bytes. The header makes every failure
 * mode detectable: a schema tag from a future version reads as STALE,
 * a key that does not match the file name (or a short/corrupt file)
 * reads as CORRUPT — and both are treated by callers as a plain miss,
 * never an error. Records and the journal are published atomically
 * (temp file + rename, like the ledger/manifest writers), so a
 * concurrent reader or a crash can never observe a half-written
 * record.
 *
 * Eviction is LRU by *logical sequence number*, not by time: the
 * journal stores keys oldest-first, rewritten on every touch. Like
 * everything else in the repo the cache is timestamp-free, so two
 * identical runs leave byte-identical cache state. When the byte
 * budget is exceeded the least-recently-used records are deleted
 * until the cache fits.
 *
 * Thread model: all operations serialize on one internal mutex. The
 * cache sits below the hot compute paths (a get() replaces an entire
 * cluster-sizing replay), so contention is not a concern.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace gsku {

/** Outcome of a DiskCache::get, for callers that count outcomes. */
enum class CacheGetStatus
{
    Hit,        ///< Record found, schema and key verified.
    Miss,       ///< No record under this key.
    Stale,      ///< Record exists but carries a different schema tag.
    Corrupt,    ///< Record exists but is truncated or inconsistent.
};

/** A fetched record (payload plus how the lookup went). */
struct CacheGetResult
{
    CacheGetStatus status = CacheGetStatus::Miss;
    std::string payload;    ///< Empty unless status == Hit.

    bool hit() const { return status == CacheGetStatus::Hit; }
};

class DiskCache
{
  public:
    /**
     * Opens (creating if needed) the cache rooted at @p dir.
     * @p schema tags every record; a mismatch on read is Stale.
     * @p max_bytes caps the total payload+header bytes kept on disk;
     * <= 0 means unlimited. Throws UserError when @p dir cannot be
     * created.
     */
    DiskCache(std::string dir, std::string schema,
              std::int64_t max_bytes);

    /**
     * Looks up @p key (16 lowercase hex digits). Never throws on bad
     * on-disk state: truncated, unreadable, or inconsistent records
     * report Corrupt and wrong-schema records report Stale, both of
     * which callers treat as a miss. A hit refreshes the key's LRU
     * position.
     */
    CacheGetResult get(const std::string &key);

    /**
     * Stores @p payload under @p key (replacing any existing record),
     * publishes atomically, then evicts least-recently-used records
     * until the cache is back under its byte budget. Returns the
     * number of records evicted; I/O failure is reported as -1 and
     * leaves the cache usable (the entry is simply not stored).
     */
    int put(const std::string &key, const std::string &payload);

    /** Number of records currently tracked by the journal. */
    std::size_t size();

    /** The cache directory this instance operates on. */
    const std::string &dir() const { return dir_; }

  private:
    std::string recordPath(const std::string &key) const;
    std::string journalPath() const;

    /** Loads the LRU journal (oldest first); self-heals by dropping
     *  journal entries whose record files are gone. */
    std::vector<std::string> loadJournal();

    /** Atomically rewrites the journal. */
    void storeJournal(const std::vector<std::string> &keys);

    /** Moves @p key to the most-recently-used end of the journal. */
    void touch(const std::string &key);

    /** Deletes LRU records until total bytes fit the budget. */
    int evictToBudget(std::vector<std::string> &keys);

    std::mutex mutex_;
    std::string dir_;
    std::string schema_;
    std::int64_t max_bytes_;
};

} // namespace gsku
