#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace gsku {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_) {
        word = splitmix64(s);
    }
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    GSKU_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    GSKU_REQUIRE(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x;
    do {
        x = (*this)();
    } while (x >= limit);
    return x % n;
}

double
Rng::normal()
{
    // Box-Muller; draw until u1 is nonzero so log() is finite.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace gsku
