#include "common/error.h"

#include <sstream>

namespace gsku {
namespace detail {

namespace {

std::string
formatMessage(const char *file, int line, const std::string &msg)
{
    std::ostringstream out;
    out << msg << " [" << file << ":" << line << "]";
    return out.str();
}

} // namespace

void
throwUserError(const char *file, int line, const std::string &msg)
{
    throw UserError(formatMessage(file, line, msg));
}

void
throwInternalError(const char *file, int line, const std::string &msg)
{
    throw InternalError(formatMessage(file, line, msg));
}

} // namespace detail
} // namespace gsku
