#include "common/parse.h"

#include <cctype>
#include <limits>
#include <stdexcept>

#include "common/error.h"

namespace gsku {

namespace {

/**
 * Shared full-token driver: runs one std::sto* conversion (passed as
 * a callable so int/long/u64/double share the policy), then enforces
 * that every character of the token was consumed. std::sto* skips
 * leading whitespace and stops at the first bad character, both of
 * which we treat as errors: a numeric cell is a number, nothing else.
 */
template <typename Conv>
auto
parseFullToken(const std::string &token, const ParseContext &ctx,
               const char *type_name, Conv conv)
{
    GSKU_REQUIRE(!token.empty(),
                 describe(ctx) + "empty token where a " +
                     std::string(type_name) + " was expected");
    GSKU_REQUIRE(!std::isspace(static_cast<unsigned char>(token.front())),
                 describe(ctx) + "cannot parse '" + token + "' as " +
                     type_name + ": leading whitespace");
    std::size_t used = 0;
    decltype(conv(token, &used)) value{};
    try {
        value = conv(token, &used);
    } catch (const std::invalid_argument &) {
        GSKU_REQUIRE(false, describe(ctx) + "cannot parse '" + token +
                                "' as " + type_name);
    } catch (const std::out_of_range &) {
        GSKU_REQUIRE(false, describe(ctx) + "'" + token +
                                "' is out of range for " + type_name);
    }
    GSKU_REQUIRE(used == token.size(),
                 describe(ctx) + "cannot parse '" + token + "' as " +
                     type_name + ": trailing junk '" +
                     token.substr(used) + "'");
    return value;
}

} // namespace

std::string
describe(const ParseContext &ctx)
{
    std::string out;
    if (!ctx.source.empty()) {
        out += ctx.source + ": ";
    }
    if (ctx.line > 0) {
        out += "line " + std::to_string(ctx.line) + ": ";
    }
    if (!ctx.field.empty()) {
        out += "field '" + ctx.field + "': ";
    }
    return out;
}

int
parseInt(const std::string &token, const ParseContext &ctx)
{
    const long wide = parseFullToken(
        token, ctx, "int", [](const std::string &t, std::size_t *used) {
            return std::stol(t, used); // lint-ok: checked-parse
        });
    GSKU_REQUIRE(wide >= std::numeric_limits<int>::min() &&
                     wide <= std::numeric_limits<int>::max(),
                 describe(ctx) + "'" + token +
                     "' is out of range for int");
    return static_cast<int>(wide);
}

long
parseLong(const std::string &token, const ParseContext &ctx)
{
    return parseFullToken(
        token, ctx, "long", [](const std::string &t, std::size_t *used) {
            return std::stol(t, used); // lint-ok: checked-parse
        });
}

std::uint64_t
parseU64(const std::string &token, const ParseContext &ctx)
{
    // std::stoull accepts "-1" by wrapping it; reject signs up front
    // so an unsigned field can never swallow a negative cell.
    GSKU_REQUIRE(token.empty() || (token.front() != '-' &&
                                   token.front() != '+'),
                 describe(ctx) + "cannot parse '" + token +
                     "' as u64: sign not allowed");
    return parseFullToken(
        token, ctx, "u64", [](const std::string &t, std::size_t *used) {
            return std::stoull(t, used); // lint-ok: checked-parse
        });
}

double
parseDouble(const std::string &token, const ParseContext &ctx)
{
    return parseFullToken(
        token, ctx, "double",
        [](const std::string &t, std::size_t *used) {
            return std::stod(t, used); // lint-ok: checked-parse
        });
}

} // namespace gsku
