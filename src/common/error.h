/**
 * @file
 * Error handling for the GreenSKU library.
 *
 * Follows the gem5 fatal-vs-panic convention:
 *  - UserError ("fatal"): the caller supplied an invalid configuration or
 *    argument; the library cannot continue but the library itself is fine.
 *  - InternalError ("panic"): an invariant inside the library was violated;
 *    this is a bug in the library, never the caller's fault.
 */
#pragma once

#include <stdexcept>
#include <string>

namespace gsku {

/** Raised when caller-provided configuration or arguments are invalid. */
class UserError : public std::runtime_error
{
  public:
    explicit UserError(const std::string &what) : std::runtime_error(what) {}
};

/** Raised when an internal invariant is violated (a library bug). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void throwUserError(const char *file, int line,
                                 const std::string &msg);
[[noreturn]] void throwInternalError(const char *file, int line,
                                     const std::string &msg);

} // namespace detail

/**
 * Validate a caller-supplied condition; throws UserError when false.
 * Use for configuration and argument checking on public entry points.
 */
#define GSKU_REQUIRE(cond, msg)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::gsku::detail::throwUserError(__FILE__, __LINE__, (msg));       \
        }                                                                    \
    } while (0)

/**
 * Check an internal invariant; throws InternalError when false.
 * A firing GSKU_ASSERT always indicates a library bug.
 */
#define GSKU_ASSERT(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::gsku::detail::throwInternalError(__FILE__, __LINE__, (msg));   \
        }                                                                    \
    } while (0)

} // namespace gsku
