#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace gsku {

namespace detail {

namespace {

/** True while the current thread is executing a pool task; nested
 *  parallelFor calls detect this and run serially inline. */
thread_local bool tls_in_pool_task = false;

/** Worker id within the owning pool: 0 = the submitting caller,
 *  1..threads-1 = pool workers. Observability only (trace span tags). */
thread_local int tls_worker_id = 0;

obs::Counter &
tasksRunCounter()
{
    static obs::Counter &c = obs::metrics().counter("parallel.tasks_run");
    return c;
}

} // namespace

/** One parallelFor invocation: a shared work-stealing batch. */
struct Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;

    /** Submitting thread's innermost profile domain: workers install
     *  it around each task so work units nest identically whether a
     *  batch ran inline or on the pool (obs/profile.h). */
    obs::profiledetail::ProfileNode *profile_domain = nullptr;

    std::atomic<std::size_t> next{0};   ///< Next unclaimed task index.
    std::atomic<std::size_t> done{0};   ///< Completed task count.

    std::mutex m;
    std::condition_variable cv;         ///< Signals completion.
    bool complete = false;

    /** Exception from the lowest-index failing task. */
    std::exception_ptr error;
    std::size_t error_index = 0;

    void
    runOne(std::size_t i)
    {
        tasksRunCounter().inc();
        obs::TraceSpan span("parallel", "task");
        span.arg("index", static_cast<std::uint64_t>(i))
            .arg("worker", static_cast<std::int64_t>(tls_worker_id));
        const bool saved = tls_in_pool_task;
        tls_in_pool_task = true;
        // Inherit the submitter's domain path; the serial fast path
        // needs no installer because the caller's stack is already
        // the right context.
        obs::ProfileTaskScope profile_scope(profile_domain);
        // Heartbeat bracket: marks the worker busy for stall detection
        // and enters the obs parallel region, which keeps the tsdb
        // sampler from sampling mid-batch (obs/heartbeat.h).
        obs::beatTaskStart(tls_worker_id, i);
        try {
            (*body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(m);
            if (!error || i < error_index) {
                error = std::current_exception();
                error_index = i;
            }
        }
        obs::beatTaskEnd(tls_worker_id);
        tls_in_pool_task = saved;
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            std::lock_guard<std::mutex> lock(m);
            complete = true;
            cv.notify_all();
        }
    }

    /** Claim and run tasks until none are left. */
    void
    drain()
    {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) {
                return;
            }
            runOne(i);
        }
    }
};

struct PoolImpl
{
    int threads = 1;
    std::vector<std::thread> workers;

    std::mutex queue_mutex;
    std::condition_variable queue_cv;
    std::deque<std::shared_ptr<Batch>> queue;
    bool stop = false;

    explicit PoolImpl(int thread_count)
        : threads(thread_count < 1 ? 1 : thread_count)
    {
        obs::metrics().gauge("parallel.pool_threads")
            .set(static_cast<double>(threads));
        for (int i = 0; i < threads - 1; ++i) {
            workers.emplace_back([this, i] { workerLoop(i + 1); });
        }
    }

    ~PoolImpl()
    {
        {
            std::lock_guard<std::mutex> lock(queue_mutex);
            stop = true;
        }
        queue_cv.notify_all();
        for (std::thread &w : workers) {
            w.join();
        }
    }

    void
    workerLoop(int worker_id)
    {
        tls_worker_id = worker_id;
        for (;;) {
            std::shared_ptr<Batch> batch;
            {
                std::unique_lock<std::mutex> lock(queue_mutex);
                queue_cv.wait(lock,
                              [this] { return stop || !queue.empty(); });
                if (stop) {
                    return;
                }
                batch = queue.front();
            }
            batch->drain();
            {
                // Retire the batch once its tasks are all claimed.
                std::lock_guard<std::mutex> lock(queue_mutex);
                if (!queue.empty() && queue.front() == batch) {
                    queue.pop_front();
                }
            }
        }
    }

    void
    run(std::size_t n, const std::function<void(std::size_t)> &body)
    {
        if (n == 0) {
            return;
        }
        // Batch-shape metrics are identical at every thread count: both
        // the serial and pooled paths run the same n tasks.
        static obs::Counter &batches =
            obs::metrics().counter("parallel.batches");
        static obs::Histogram &batch_tasks = obs::metrics().histogram(
            "parallel.batch_tasks", {1, 4, 16, 64, 256, 1024, 4096});
        batches.inc();
        batch_tasks.observe(static_cast<double>(n));
        // Serial fast path: single-threaded pool, trivial batch, or a
        // nested call from inside a pool task (deadlock-free nesting).
        if (threads == 1 || n == 1 || tls_in_pool_task) {
            for (std::size_t i = 0; i < n; ++i) {
                obs::TraceSpan span("parallel", "task");
                span.arg("index", static_cast<std::uint64_t>(i))
                    .arg("worker",
                         static_cast<std::int64_t>(tls_worker_id));
                // Same heartbeat bracket as the pooled path, so the
                // obs parallel-region depth (and therefore tsdb
                // sample points) is identical at every thread count.
                obs::beatTaskStart(tls_worker_id, i);
                try {
                    body(i);
                } catch (...) {
                    obs::beatTaskEnd(tls_worker_id);
                    throw;
                }
                obs::beatTaskEnd(tls_worker_id);
            }
            tasksRunCounter().inc(n);
            return;
        }

        auto batch = std::make_shared<Batch>();
        batch->n = n;
        batch->body = &body;
        batch->profile_domain = obs::profileCurrentDomain();
        {
            std::lock_guard<std::mutex> lock(queue_mutex);
            queue.push_back(batch);
        }
        queue_cv.notify_all();

        // The caller participates, then waits for stragglers.
        batch->drain();
        {
            std::lock_guard<std::mutex> lock(queue_mutex);
            if (!queue.empty() && queue.front() == batch) {
                queue.pop_front();
            }
        }
        {
            // Poll while waiting for stragglers: a worker stuck on one
            // task past GSKU_STALL_SECONDS becomes a stall event in
            // the heartbeat table and the flight recorder. The poll
            // period only bounds detection latency — completion still
            // arrives via the condition variable.
            std::unique_lock<std::mutex> lock(batch->m);
            while (!batch->cv.wait_for(
                lock, std::chrono::milliseconds(100),
                [&] { return batch->complete; })) {
                obs::stallCheck();
            }
        }
        if (batch->error) {
            std::rethrow_exception(batch->error);
        }
    }
};

} // namespace detail

ThreadPool::ThreadPool(int threads)
    : impl_(std::make_unique<detail::PoolImpl>(threads))
{
}

ThreadPool::~ThreadPool() = default;

int
ThreadPool::threads() const
{
    return impl_->threads;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    impl_->run(n, body);
}

int
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("GSKU_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
        char *end = nullptr;
        // Env knob: a malformed GSKU_THREADS falls back to hardware
        // concurrency rather than throwing at pool construction.
        const long v = std::strtol(env, &end, 10); // lint-ok: checked-parse
        if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
            return static_cast<int>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::unique_ptr<ThreadPool> &
globalSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

std::mutex &
globalMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(globalMutex());
    auto &slot = globalSlot();
    if (!slot) {
        slot = std::make_unique<ThreadPool>(defaultThreads());
    }
    return *slot;
}

void
ThreadPool::resetGlobal(int threads)
{
    std::lock_guard<std::mutex> lock(globalMutex());
    auto &slot = globalSlot();
    slot.reset();
    slot = std::make_unique<ThreadPool>(threads);
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    ThreadPool::global().parallelFor(n, body);
}

} // namespace gsku
