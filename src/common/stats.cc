#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace gsku {

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::mean() const
{
    GSKU_REQUIRE(count_ > 0, "mean() of empty OnlineStats");
    return mean_;
}

double
OnlineStats::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineStats::min() const
{
    GSKU_REQUIRE(count_ > 0, "min() of empty OnlineStats");
    return min_;
}

double
OnlineStats::max() const
{
    GSKU_REQUIRE(count_ > 0, "max() of empty OnlineStats");
    return max_;
}

void
PercentileEstimator::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
PercentileEstimator::addAll(const std::vector<double> &xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void
PercentileEstimator::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
PercentileEstimator::percentile(double p) const
{
    GSKU_REQUIRE(!samples_.empty(), "percentile() of empty estimator");
    GSKU_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
    ensureSorted();
    if (samples_.size() == 1) {
        return samples_.front();
    }
    const double rank =
        p / 100.0 * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    GSKU_REQUIRE(!sorted_.empty(), "EmpiricalCdf needs at least one sample");
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::at(double x) const
{
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(std::distance(sorted_.begin(), it)) /
           static_cast<double>(sorted_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    GSKU_REQUIRE(q > 0.0 && q <= 1.0, "quantile q must be in (0, 1]");
    const std::size_t n = sorted_.size();
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n))) - 1;
    return sorted_[std::min(idx, n - 1)];
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve() const
{
    std::vector<std::pair<double, double>> points;
    points.reserve(sorted_.size());
    const double n = static_cast<double>(sorted_.size());
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
        points.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
    }
    return points;
}

MovingAverage::MovingAverage(std::size_t window) : window_(window)
{
    GSKU_REQUIRE(window > 0, "MovingAverage window must be positive");
}

double
MovingAverage::add(double x)
{
    buffer_.push_back(x);
    sum_ += x;
    if (buffer_.size() > window_) {
        sum_ -= buffer_.front();
        buffer_.pop_front();
    }
    return value();
}

double
MovingAverage::value() const
{
    GSKU_REQUIRE(!buffer_.empty(), "value() of empty MovingAverage");
    return sum_ / static_cast<double>(buffer_.size());
}

} // namespace gsku
