/**
 * @file
 * Statistical accumulators: online mean/variance, percentile estimation,
 * empirical CDFs, and moving averages. These back every figure that reports
 * a distribution (Figs. 2, 9, 10) and the latency percentiles in Figs. 7/8.
 */
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace gsku {

/** Welford online mean/variance accumulator. */
class OnlineStats
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const;
    /** Unbiased sample variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Exact percentile estimator over a retained sample set.
 * Uses linear interpolation between closest ranks (the common
 * "exclusive" definition used by numpy's default).
 */
class PercentileEstimator
{
  public:
    void add(double x);
    void addAll(const std::vector<double> &xs);

    std::size_t count() const { return samples_.size(); }

    /** p in [0, 100]. Requires at least one sample. */
    double percentile(double p) const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;

    void ensureSorted() const;
};

/**
 * Empirical CDF built from a sample set; evaluation and inverse
 * (quantile) lookups, plus an evenly-spaced dump for plotting.
 */
class EmpiricalCdf
{
  public:
    explicit EmpiricalCdf(std::vector<double> samples);

    /** Fraction of samples <= x. */
    double at(double x) const;

    /** Smallest sample with CDF >= q, q in (0, 1]. */
    double quantile(double q) const;

    std::size_t count() const { return sorted_.size(); }
    const std::vector<double> &sorted() const { return sorted_; }

    /** (value, cumulative fraction) pairs for every sample, for plotting. */
    std::vector<std::pair<double, double>> curve() const;

  private:
    std::vector<double> sorted_;
};

/** Fixed-window trailing moving average (the black line in Fig. 2). */
class MovingAverage
{
  public:
    explicit MovingAverage(std::size_t window);

    /** Add a sample and return the current windowed average. */
    double add(double x);

    double value() const;
    bool full() const { return buffer_.size() == window_; }

  private:
    std::size_t window_;
    std::deque<double> buffer_;
    double sum_ = 0.0;
};

} // namespace gsku
