#include "common/csv.h"

#include <sstream>

#include "common/error.h"

namespace gsku {

namespace {

bool
needsQuoting(const std::string &s)
{
    return s.find_first_of(",\"\n") != std::string::npos;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace

CsvWriter::CsvWriter(std::ostream &out) : out_(out)
{
}

void
CsvWriter::writeHeader(const std::vector<std::string> &names)
{
    GSKU_REQUIRE(!header_written_, "CSV header already written");
    columns_ = names.size();
    header_written_ = true;
    emit(names);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    if (header_written_) {
        GSKU_REQUIRE(cells.size() == columns_,
                     "CSV row width does not match header");
    }
    emit(cells);
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        std::ostringstream s;
        s.precision(12);
        s << v;
        cells.push_back(s.str());
    }
    writeRow(cells);
}

void
CsvWriter::emit(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
            out_ << ',';
        }
        out_ << (needsQuoting(cells[i]) ? quote(cells[i]) : cells[i]);
    }
    out_ << '\n';
}

} // namespace gsku
