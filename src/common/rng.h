/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic pieces of the library (trace generation, failure
 * Monte-Carlo) draw from this generator so that every experiment is exactly
 * reproducible from a seed. We implement xoshiro256++ directly instead of
 * using std::mt19937 so the stream is identical across standard libraries.
 */
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace gsku {

/** xoshiro256++ generator; satisfies UniformRandomBitGenerator. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double normal();

    /**
     * Fork an independent child stream. Children are seeded from this
     * stream's output, so a parent seed fully determines the whole tree of
     * streams; used to give each trace/fleet its own generator.
     */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace gsku
