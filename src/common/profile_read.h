/**
 * @file
 * Validating reader for `gsku-profile-v1` work-unit profiles (format
 * and writer: obs/profile.h). It lives in common/, not obs/, because
 * strict validation throws UserError with named byte offsets and obs
 * — the bottom module of the layering DAG — must not include the
 * error machinery; common may include obs.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profile.h"

namespace gsku::obs {

/** A fully parsed and validated profile artifact. */
struct ProfileData
{
    std::string program;
    bool wall_lane = false;
    std::uint64_t total_units = 0;
    std::uint64_t checksum = 0;            ///< As recorded (verified).
    std::vector<ProfileEntry> entries;     ///< Sorted by path, unique.
};

/**
 * Read and fully validate a profile file: fixed gsku-profile-v1 key
 * layout, strictly increasing unique domain paths, per-domain and
 * top-level unit-total consistency, and the FNV-1a checksum over the
 * deterministic lane. Throws UserError naming the offending byte
 * offset on any violation.
 */
ProfileData readProfile(const std::string &path);

} // namespace gsku::obs
