/**
 * @file
 * Strongly-typed physical quantities used throughout the carbon model.
 *
 * The carbon model mixes power, energy, time, carbon mass, and carbon
 * intensity; mixing these up silently is the classic source of
 * order-of-magnitude errors in emission models. Each quantity is therefore a
 * distinct type with only the physically meaningful operators defined:
 *
 *   Power * Duration            -> Energy
 *   Energy * CarbonIntensity    -> CarbonMass
 *
 * Canonical internal representations: watts, kilowatt-hours, hours,
 * kgCO2e, and kgCO2e/kWh, matching the units the paper reports.
 */
#pragma once

#include <cmath>
#include <compare>

namespace gsku {

namespace detail {

/**
 * CRTP base providing the arithmetic shared by all scalar quantities:
 * addition/subtraction with the same quantity, scaling by dimensionless
 * doubles, ratios (same-quantity division yields a dimensionless double),
 * and ordering.
 */
template <typename Derived>
class ScalarQuantity
{
  public:
    constexpr ScalarQuantity() = default;
    explicit constexpr ScalarQuantity(double value) : value_(value) {}

    /** Raw value in the quantity's canonical unit. */
    constexpr double raw() const { return value_; }

    friend constexpr Derived
    operator+(Derived a, Derived b)
    {
        return Derived(a.raw() + b.raw());
    }

    friend constexpr Derived
    operator-(Derived a, Derived b)
    {
        return Derived(a.raw() - b.raw());
    }

    friend constexpr Derived
    operator*(Derived a, double s)
    {
        return Derived(a.raw() * s);
    }

    friend constexpr Derived
    operator*(double s, Derived a)
    {
        return Derived(a.raw() * s);
    }

    friend constexpr Derived
    operator/(Derived a, double s)
    {
        return Derived(a.raw() / s);
    }

    /** Ratio of two like quantities is dimensionless. */
    friend constexpr double
    operator/(Derived a, Derived b)
    {
        return a.raw() / b.raw();
    }

    friend constexpr Derived
    operator-(Derived a)
    {
        return Derived(-a.raw());
    }

    Derived &
    operator+=(Derived other)
    {
        value_ += other.raw();
        return static_cast<Derived &>(*this);
    }

    Derived &
    operator-=(Derived other)
    {
        value_ -= other.raw();
        return static_cast<Derived &>(*this);
    }

    friend constexpr auto
    operator<=>(ScalarQuantity a, ScalarQuantity b)
    {
        return a.value_ <=> b.value_;
    }

    friend constexpr bool
    operator==(ScalarQuantity a, ScalarQuantity b)
    {
        return a.value_ == b.value_;
    }

  private:
    double value_ = 0.0;
};

} // namespace detail

/** Electrical power; canonical unit: watts. */
class Power : public detail::ScalarQuantity<Power>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr Power watts(double w) { return Power(w); }
    static constexpr Power kilowatts(double kw) { return Power(kw * 1e3); }

    constexpr double asWatts() const { return raw(); }
    constexpr double asKilowatts() const { return raw() / 1e3; }
};

/** Time span; canonical unit: hours. */
class Duration : public detail::ScalarQuantity<Duration>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr Duration hours(double h) { return Duration(h); }
    static constexpr Duration days(double d) { return Duration(d * 24.0); }

    /** One year is 8760 hours, matching the paper's 52,560 h = 6 y. */
    static constexpr Duration years(double y) { return Duration(y * 8760.0); }

    constexpr double asHours() const { return raw(); }
    constexpr double asYears() const { return raw() / 8760.0; }
};

/** Electrical energy; canonical unit: kilowatt-hours. */
class Energy : public detail::ScalarQuantity<Energy>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr Energy kilowattHours(double kwh) { return Energy(kwh); }
    static constexpr Energy
    megawattHours(double mwh)
    {
        return Energy(mwh * 1e3);
    }

    constexpr double asKilowattHours() const { return raw(); }
};

/** Carbon-dioxide-equivalent mass; canonical unit: kgCO2e. */
class CarbonMass : public detail::ScalarQuantity<CarbonMass>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr CarbonMass kg(double kg) { return CarbonMass(kg); }
    static constexpr CarbonMass
    tonnes(double t)
    {
        return CarbonMass(t * 1e3);
    }

    constexpr double asKg() const { return raw(); }
    constexpr double asTonnes() const { return raw() / 1e3; }
};

/** Grid carbon intensity; canonical unit: kgCO2e per kWh. */
class CarbonIntensity : public detail::ScalarQuantity<CarbonIntensity>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr CarbonIntensity
    kgPerKwh(double v)
    {
        return CarbonIntensity(v);
    }

    constexpr double asKgPerKwh() const { return raw(); }
};

/** Power sustained over a duration yields energy. */
constexpr Energy
operator*(Power p, Duration t)
{
    return Energy::kilowattHours(p.asKilowatts() * t.asHours());
}

constexpr Energy
operator*(Duration t, Power p)
{
    return p * t;
}

/** Energy consumed at a grid carbon intensity yields emitted carbon. */
constexpr CarbonMass
operator*(Energy e, CarbonIntensity ci)
{
    return CarbonMass::kg(e.asKilowattHours() * ci.asKgPerKwh());
}

constexpr CarbonMass
operator*(CarbonIntensity ci, Energy e)
{
    return e * ci;
}

/**
 * Money; canonical unit: US dollars. Used by the TCO model so cost can
 * never be silently mixed with carbon mass or energy (the same class of
 * bug the carbon quantities guard against).
 */
class Cost : public detail::ScalarQuantity<Cost>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr Cost usd(double v) { return Cost(v); }

    constexpr double asUsd() const { return raw(); }
};

/** Electricity price; canonical unit: USD per kWh. */
class EnergyPrice : public detail::ScalarQuantity<EnergyPrice>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr EnergyPrice usdPerKwh(double v)
    {
        return EnergyPrice(v);
    }

    constexpr double asUsdPerKwh() const { return raw(); }
};

/** Energy bought at a price yields cost. */
constexpr Cost
operator*(Energy e, EnergyPrice p)
{
    return Cost::usd(e.asKilowattHours() * p.asUsdPerKwh());
}

constexpr Cost
operator*(EnergyPrice p, Energy e)
{
    return e * p;
}

/** Memory capacity; canonical unit: gigabytes (decimal, matching DIMM SKUs). */
class MemCapacity : public detail::ScalarQuantity<MemCapacity>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr MemCapacity gb(double v) { return MemCapacity(v); }

    constexpr double asGb() const { return raw(); }
};

/** Storage capacity; canonical unit: terabytes. */
class StorageCapacity : public detail::ScalarQuantity<StorageCapacity>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr StorageCapacity tb(double v) { return StorageCapacity(v); }
    static constexpr StorageCapacity
    gb(double v)
    {
        return StorageCapacity(v / 1e3);
    }

    constexpr double asTb() const { return raw(); }
};

/** Memory price; canonical unit: USD per GB. */
class MemPrice : public detail::ScalarQuantity<MemPrice>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr MemPrice usdPerGb(double v) { return MemPrice(v); }

    constexpr double asUsdPerGb() const { return raw(); }
};

/** Storage price; canonical unit: USD per TB. */
class StoragePrice : public detail::ScalarQuantity<StoragePrice>
{
  public:
    using ScalarQuantity::ScalarQuantity;

    static constexpr StoragePrice usdPerTb(double v)
    {
        return StoragePrice(v);
    }

    constexpr double asUsdPerTb() const { return raw(); }
};

/** Memory bought at a per-GB price yields cost. */
constexpr Cost
operator*(MemCapacity m, MemPrice p)
{
    return Cost::usd(m.asGb() * p.asUsdPerGb());
}

constexpr Cost
operator*(MemPrice p, MemCapacity m)
{
    return m * p;
}

/** Storage bought at a per-TB price yields cost. */
constexpr Cost
operator*(StorageCapacity s, StoragePrice p)
{
    return Cost::usd(s.asTb() * p.asUsdPerTb());
}

constexpr Cost
operator*(StoragePrice p, StorageCapacity s)
{
    return s * p;
}

} // namespace gsku
