#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace gsku {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns))
{
    GSKU_REQUIRE(!headers_.empty(), "Table needs at least one column");
    if (aligns_.empty()) {
        aligns_.assign(headers_.size(), Align::Left);
    }
    GSKU_REQUIRE(aligns_.size() == headers_.size(),
                 "Table aligns must match header count");
}

void
Table::addRow(std::vector<std::string> cells)
{
    GSKU_REQUIRE(cells.size() == headers_.size(),
                 "Table row has wrong number of cells");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " ");
            const std::size_t pad = widths[c] - row[c].size();
            if (aligns_[c] == Align::Right) {
                out << std::string(pad, ' ') << row[c];
            } else {
                out << row[c] << std::string(pad, ' ');
            }
            out << " |";
        }
        out << '\n';
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    out << '\n';
    for (const auto &row : rows_) {
        emit_row(row);
    }
    return out.str();
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << v;
    return out.str();
}

std::string
Table::percent(double ratio, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << ratio * 100.0 << "%";
    return out.str();
}

} // namespace gsku
