/**
 * @file
 * Scalar root finding and monotone search. The §VII "alternatives" analyses
 * (how much renewables / efficiency / lifetime matches GreenSKU-Full's
 * savings) are all solved as root-finding problems on monotone functions.
 */
#pragma once

#include <functional>
#include <optional>

namespace gsku {

/** Result of a bisection solve. */
struct RootResult
{
    double root;        ///< Abscissa where f crosses zero.
    double residual;    ///< f(root); |residual| <= tolerance on success.
    int iterations;     ///< Bisection steps performed.
};

/**
 * Find x in [lo, hi] with f(x) = 0 by bisection. Stops when
 * |f(x)| <= f_tolerance or the bracket narrows below x_tolerance.
 *
 * Requires f(lo) and f(hi) to bracket a root (opposite signs); returns
 * std::nullopt when they do not. f need not be monotone, but with multiple
 * roots an arbitrary one is returned.
 */
std::optional<RootResult>
bisect(const std::function<double(double)> &f, double lo, double hi,
       double f_tolerance = 1e-9, double x_tolerance = 1e-12,
       int max_iterations = 200);

/**
 * Smallest integer n in [lo, hi] such that pred(n) is true, assuming pred
 * is monotone (false... then true). Returns std::nullopt when pred(hi) is
 * false. Used by cluster right-sizing ("fewest servers hosting the trace").
 */
std::optional<long>
smallestTrue(const std::function<bool(long)> &pred, long lo, long hi);

/**
 * smallestTrue for searches whose answer is expected near @p lo:
 * gallop up from lo with doubling steps until pred flips true (capped
 * at hi), then bisect the last (false, true] bracket. Identical answer
 * to smallestTrue(pred, lo, hi) in O(log(answer - lo)) probes instead
 * of O(log(hi - lo)) — the win when hi is a huge safety bound and lo a
 * tight seed (e.g. cluster sizing seeded from peak concurrent demand).
 * Returns std::nullopt when pred is false on the whole range.
 */
std::optional<long>
smallestTrueGalloping(const std::function<bool(long)> &pred, long lo,
                      long hi);

} // namespace gsku
