/**
 * @file
 * Contract (design-by-contract) layer for the GreenSKU library.
 *
 * Complements common/error.h:
 *  - GSKU_REQUIRE (error.h) validates *caller* input on public entry
 *    points and throws UserError; it is always compiled in.
 *  - The contract macros below check *internal* correctness — the
 *    arithmetic and bookkeeping the paper's results rest on — and throw
 *    InternalError. A firing contract is always a library bug.
 *
 * Macro semantics:
 *  - GSKU_EXPECT(cond, msg)    precondition of an internal operation.
 *  - GSKU_ENSURE(cond, msg)    postcondition: a result the operation
 *                              promised (non-negative carbon mass,
 *                              monotone event time, ...).
 *  - GSKU_INVARIANT(cond, msg) state invariant that must hold between
 *                              operations.
 *  - GSKU_AUDIT(cond, msg)     expensive invariant (e.g. a full pass
 *                              over simulator state); only checked in
 *                              audit-level builds.
 *
 * Check levels (GSKU_CONTRACT_LEVEL):
 *  - 0: all contract macros compile to no-ops (opt-in via
 *       -DGSKU_CONTRACTS=OFF for maximum-speed production runs).
 *  - 1: cheap O(1) contracts (EXPECT/ENSURE/INVARIANT) are checked;
 *       audits are skipped. The default for optimized builds.
 *  - 2: everything is checked, including audits. The default for Debug
 *       and sanitizer builds (the `asan`/`tsan` CMake presets).
 *
 * The level is normally injected by CMake (see GSKU_CONTRACTS in the
 * top-level CMakeLists.txt); the fallback below picks 2 under a
 * sanitizer or unoptimized build and 1 otherwise.
 */
#pragma once

#include "common/error.h"

// ---------------------------------------------------------------------
// Level selection.
// ---------------------------------------------------------------------

#if !defined(GSKU_CONTRACT_LEVEL)
#  if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#    define GSKU_CONTRACT_LEVEL 2
#  elif defined(__has_feature)
#    if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#      define GSKU_CONTRACT_LEVEL 2
#    endif
#  endif
#endif
#if !defined(GSKU_CONTRACT_LEVEL)
#  if !defined(NDEBUG)
#    define GSKU_CONTRACT_LEVEL 2
#  else
#    define GSKU_CONTRACT_LEVEL 1
#  endif
#endif

#if GSKU_CONTRACT_LEVEL < 0 || GSKU_CONTRACT_LEVEL > 2
#  error "GSKU_CONTRACT_LEVEL must be 0, 1, or 2"
#endif

namespace gsku::contracts {

/** Compile-time contract level of this translation unit. */
inline constexpr int kLevel = GSKU_CONTRACT_LEVEL;

/** True when the cheap contracts (EXPECT/ENSURE/INVARIANT) are active. */
inline constexpr bool enabled() { return kLevel >= 1; }

/**
 * True when expensive audits are active. Use to skip *building the
 * inputs* of a GSKU_AUDIT (e.g. summing state across a fleet):
 *
 *   if (gsku::contracts::auditEnabled()) {
 *       const double total = sumAllocatedCores(servers);
 *       GSKU_AUDIT(std::abs(total - ledger) < 1e-6, "cores leaked");
 *   }
 */
inline constexpr bool auditEnabled() { return kLevel >= 2; }

namespace detail {

[[noreturn]] void contractFailure(const char *kind, const char *cond,
                                  const char *file, int line,
                                  const std::string &msg);

} // namespace detail
} // namespace gsku::contracts

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

#define GSKU_DETAIL_CONTRACT(kind, cond, msg)                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::gsku::contracts::detail::contractFailure(                      \
                kind, #cond, __FILE__, __LINE__, (msg));                     \
        }                                                                    \
    } while (0)

#if GSKU_CONTRACT_LEVEL >= 1
/** Precondition of an internal operation; throws InternalError. */
#  define GSKU_EXPECT(cond, msg) GSKU_DETAIL_CONTRACT("EXPECT", cond, msg)
/** Postcondition of an internal operation; throws InternalError. */
#  define GSKU_ENSURE(cond, msg) GSKU_DETAIL_CONTRACT("ENSURE", cond, msg)
/** State invariant between operations; throws InternalError. */
#  define GSKU_INVARIANT(cond, msg)                                          \
    GSKU_DETAIL_CONTRACT("INVARIANT", cond, msg)
#else
#  define GSKU_EXPECT(cond, msg) ((void)0)
#  define GSKU_ENSURE(cond, msg) ((void)0)
#  define GSKU_INVARIANT(cond, msg) ((void)0)
#endif

#if GSKU_CONTRACT_LEVEL >= 2
/** Expensive invariant; only checked at audit level (Debug/sanitizer). */
#  define GSKU_AUDIT(cond, msg) GSKU_DETAIL_CONTRACT("AUDIT", cond, msg)
#else
#  define GSKU_AUDIT(cond, msg) ((void)0)
#endif
