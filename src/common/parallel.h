/**
 * @file
 * The repo-wide parallel execution layer: a fixed-size worker pool with
 * deterministic `parallelFor` / `parallelMap` primitives.
 *
 * Design rules (docs/performance.md):
 *
 *  - All concurrency flows through this pool. Raw std::thread /
 *    std::async are banned elsewhere (tools/lint.py `concurrency` rule)
 *    so there is exactly one place to audit for races.
 *  - Determinism: tasks are indexed 0..n-1 and results land in the slot
 *    of their index, so parallel and serial runs produce byte-identical
 *    outputs whenever the tasks themselves are pure functions of their
 *    index. Work distribution (which thread runs which index) is NOT
 *    deterministic — only the results are.
 *  - Thread count: `GSKU_THREADS` env override, else the hardware
 *    concurrency. At 1 thread every primitive degenerates to a plain
 *    serial loop on the calling thread — no workers are ever touched.
 *  - Nesting: a `parallelFor` issued from inside a pool task runs
 *    serially inline on the calling worker. This makes nested
 *    parallelism deadlock-free and keeps the pool at its fixed size;
 *    structure code so the *outer* level has enough tasks.
 *  - Exceptions: if tasks throw, the exception from the lowest task
 *    index is rethrown on the caller (deterministic), after all tasks
 *    have finished.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace gsku {

namespace detail {
struct PoolImpl;
} // namespace detail

/** Fixed-size worker pool. One global instance serves the whole
 *  process; private instances exist only for tests. */
class ThreadPool
{
  public:
    /** @p threads total concurrency (including the calling thread);
     *  clamped to >= 1. The pool spawns threads-1 workers. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency this pool provides (workers + caller). */
    int threads() const;

    /**
     * Run @p body(i) for every i in [0, n). Blocks until all tasks are
     * done; the calling thread participates. Serial (and allocation-
     * free) when threads() == 1, n <= 1, or called from inside a pool
     * task.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Deterministically-ordered map: out[i] = body(i). @p T must be
     * default-constructible and movable.
     */
    template <typename T>
    std::vector<T>
    parallelMap(std::size_t n,
                const std::function<T(std::size_t)> &body)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = body(i); });
        return out;
    }

    /** The process-wide pool, created on first use with
     *  defaultThreads() threads. */
    static ThreadPool &global();

    /**
     * Thread count the global pool is created with: the positive
     * integer in the GSKU_THREADS environment variable if set and
     * valid, else std::thread::hardware_concurrency() (min 1).
     */
    static int defaultThreads();

    /**
     * Destroy and re-create the global pool with @p threads threads.
     * For benchmarks and parity tests only: must not race with any
     * in-flight parallelFor on the global pool.
     */
    static void resetGlobal(int threads);

  private:
    std::unique_ptr<detail::PoolImpl> impl_;
};

/** parallelFor on the global pool. */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body);

/** parallelMap on the global pool. */
template <typename T>
std::vector<T>
parallelMap(std::size_t n, const std::function<T(std::size_t)> &body)
{
    return ThreadPool::global().parallelMap<T>(n, body);
}

} // namespace gsku
