#include "common/diskcache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/error.h"

namespace fs = std::filesystem;

namespace gsku {

namespace {

/** 16 lowercase hex digits — the only key shape the cache accepts. */
bool
validKey(const std::string &key)
{
    if (key.size() != 16) {
        return false;
    }
    for (char c : key) {
        const bool hex =
            (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex) {
            return false;
        }
    }
    return true;
}

/**
 * Parses the one-line record header. Deliberately rigid: the header
 * is machine-written by writeRecord below, so anything that deviates
 * is corruption, not format flexibility to tolerate.
 */
bool
parseHeader(const std::string &line, std::string &schema,
            std::string &key, std::size_t &payload_bytes)
{
    auto grab = [&](const char *field, std::string &out) {
        const std::string tag = std::string("\"") + field + "\": \"";
        const std::size_t at = line.find(tag);
        if (at == std::string::npos) {
            return false;
        }
        const std::size_t start = at + tag.size();
        const std::size_t end = line.find('"', start);
        if (end == std::string::npos) {
            return false;
        }
        out = line.substr(start, end - start);
        return true;
    };
    if (!grab("schema", schema) || !grab("key", key)) {
        return false;
    }
    const std::string tag = "\"payload_bytes\": ";
    const std::size_t at = line.find(tag);
    if (at == std::string::npos) {
        return false;
    }
    std::size_t i = at + tag.size();
    if (i >= line.size() || line[i] < '0' || line[i] > '9') {
        return false;
    }
    payload_bytes = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        payload_bytes = payload_bytes * 10 +
                        static_cast<std::size_t>(line[i] - '0');
        ++i;
    }
    return true;
}

/** Atomic publish shared by records and the journal. */
bool
writeAtomically(const std::string &path, const std::string &body)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::trunc | std::ios::binary);
        file << body;
        if (!file) {
            return false;
        }
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace

DiskCache::DiskCache(std::string dir, std::string schema,
                     std::int64_t max_bytes)
    : dir_(std::move(dir)), schema_(std::move(schema)),
      max_bytes_(max_bytes)
{
    GSKU_REQUIRE(!dir_.empty(), "cache directory must not be empty");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    GSKU_REQUIRE(!ec && fs::is_directory(dir_),
                 "cannot create cache directory '" + dir_ + "'");
}

std::string
DiskCache::recordPath(const std::string &key) const
{
    return dir_ + "/" + key + ".rec";
}

std::string
DiskCache::journalPath() const
{
    return dir_ + "/journal.txt";
}

std::vector<std::string>
DiskCache::loadJournal()
{
    std::vector<std::string> keys;
    {
        std::ifstream in(journalPath());
        std::string line;
        bool header_ok = false;
        if (std::getline(in, line)) {
            header_ok = line == schema_;
        }
        if (header_ok) {
            while (std::getline(in, line)) {
                if (validKey(line) && fs::exists(recordPath(line))) {
                    keys.push_back(line);
                }
            }
        }
    }
    // Self-heal: adopt record files the journal does not know about
    // (a crash between record and journal publish). They join at the
    // oldest end, sorted, so recovery is deterministic.
    std::vector<std::string> orphans;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() != 20 || name.substr(16) != ".rec") {
            continue;
        }
        const std::string key = name.substr(0, 16);
        if (validKey(key) &&
            std::find(keys.begin(), keys.end(), key) == keys.end()) {
            orphans.push_back(key);
        }
    }
    std::sort(orphans.begin(), orphans.end());
    keys.insert(keys.begin(), orphans.begin(), orphans.end());
    return keys;
}

void
DiskCache::storeJournal(const std::vector<std::string> &keys)
{
    std::string body = schema_ + "\n";
    for (const std::string &key : keys) {
        body += key + "\n";
    }
    writeAtomically(journalPath(), body);
}

void
DiskCache::touch(const std::string &key)
{
    std::vector<std::string> keys = loadJournal();
    const auto it = std::find(keys.begin(), keys.end(), key);
    if (it != keys.end() && it + 1 == keys.end()) {
        return;     // Already most recent; journal unchanged.
    }
    if (it != keys.end()) {
        keys.erase(it);
    }
    keys.push_back(key);
    storeJournal(keys);
}

CacheGetResult
DiskCache::get(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CacheGetResult result;
    if (!validKey(key)) {
        result.status = CacheGetStatus::Miss;
        return result;
    }
    std::ifstream in(recordPath(key), std::ios::binary);
    if (!in) {
        result.status = CacheGetStatus::Miss;
        return result;
    }
    std::string header;
    if (!std::getline(in, header)) {
        result.status = CacheGetStatus::Corrupt;
        return result;
    }
    std::string schema;
    std::string stored_key;
    std::size_t payload_bytes = 0;
    if (!parseHeader(header, schema, stored_key, payload_bytes)) {
        result.status = CacheGetStatus::Corrupt;
        return result;
    }
    if (schema != schema_) {
        result.status = CacheGetStatus::Stale;
        return result;
    }
    if (stored_key != key) {
        result.status = CacheGetStatus::Corrupt;
        return result;
    }
    std::string payload(payload_bytes, '\0');
    in.read(payload.data(),
            static_cast<std::streamsize>(payload_bytes));
    if (static_cast<std::size_t>(in.gcount()) != payload_bytes) {
        result.status = CacheGetStatus::Corrupt;    // Truncated.
        return result;
    }
    // Trailing bytes beyond the declared payload are inconsistent
    // with the header — also corruption.
    char extra = 0;
    if (in.read(&extra, 1); in.gcount() != 0) {
        result.status = CacheGetStatus::Corrupt;
        return result;
    }
    result.status = CacheGetStatus::Hit;
    result.payload = std::move(payload);
    touch(key);
    return result;
}

int
DiskCache::put(const std::string &key, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!validKey(key)) {
        return -1;
    }
    std::ostringstream header;
    header << "{\"schema\": \"" << schema_ << "\", \"key\": \"" << key
           << "\", \"payload_bytes\": " << payload.size() << "}\n";
    if (!writeAtomically(recordPath(key), header.str() + payload)) {
        return -1;
    }
    std::vector<std::string> keys = loadJournal();
    const auto it = std::find(keys.begin(), keys.end(), key);
    if (it != keys.end()) {
        keys.erase(it);
    }
    keys.push_back(key);
    const int evicted = evictToBudget(keys);
    storeJournal(keys);
    return evicted;
}

int
DiskCache::evictToBudget(std::vector<std::string> &keys)
{
    if (max_bytes_ <= 0) {
        return 0;
    }
    std::int64_t total = 0;
    for (const std::string &key : keys) {
        std::error_code ec;
        const auto bytes = fs::file_size(recordPath(key), ec);
        total += ec ? 0 : static_cast<std::int64_t>(bytes);
    }
    int evicted = 0;
    // Never evict the most recent record (the one just stored or
    // touched): a put must not be self-defeating under a budget
    // smaller than a single record.
    while (total > max_bytes_ && keys.size() > 1) {
        const std::string victim = keys.front();
        std::error_code ec;
        const auto bytes = fs::file_size(recordPath(victim), ec);
        total -= ec ? 0 : static_cast<std::int64_t>(bytes);
        fs::remove(recordPath(victim), ec);
        keys.erase(keys.begin());
        ++evicted;
    }
    return evicted;
}

std::size_t
DiskCache::size()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return loadJournal().size();
}

} // namespace gsku
