#include "common/solver.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace gsku {

namespace {

/**
 * Bracket width hi - lo computed in unsigned space, so it is
 * well-defined even when the bracket spans more than LONG_MAX
 * (lo deeply negative, hi near the top). A plain signed subtraction
 * there is undefined behaviour and, in practice, flips negative —
 * which made the midpoint land outside [lo, hi].
 */
unsigned long
bracketWidth(long lo, long hi)
{
    return static_cast<unsigned long>(hi) - static_cast<unsigned long>(lo);
}

/** lo + delta, overflow-free for any delta <= bracketWidth(lo, hi). */
long
bracketAdvance(long lo, unsigned long delta)
{
    return static_cast<long>(static_cast<unsigned long>(lo) + delta);
}

} // namespace

std::optional<RootResult>
bisect(const std::function<double(double)> &f, double lo, double hi,
       double f_tolerance, double x_tolerance, int max_iterations)
{
    GSKU_REQUIRE(lo < hi, "bisect requires lo < hi");
    GSKU_REQUIRE(f_tolerance > 0.0 && x_tolerance > 0.0,
                 "bisect tolerances must be positive");

    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0) {
        return RootResult{lo, 0.0, 0};
    }
    if (fhi == 0.0) {
        return RootResult{hi, 0.0, 0};
    }
    if (std::signbit(flo) == std::signbit(fhi)) {
        return std::nullopt;
    }

    double mid = lo;
    double fmid = flo;
    int iter = 0;
    for (; iter < max_iterations; ++iter) {
        mid = 0.5 * (lo + hi);
        fmid = f(mid);
        if (std::abs(fmid) <= f_tolerance || (hi - lo) < x_tolerance) {
            break;
        }
        if (std::signbit(fmid) == std::signbit(flo)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return RootResult{mid, fmid, iter};
}

std::optional<long>
smallestTrue(const std::function<bool(long)> &pred, long lo, long hi)
{
    GSKU_REQUIRE(lo <= hi, "smallestTrue requires lo <= hi");
    if (!pred(hi)) {
        return std::nullopt;
    }
    // Invariant: pred(hi) is true; answer lies in [lo, hi].
    while (lo < hi) {
        const long mid = bracketAdvance(lo, bracketWidth(lo, hi) / 2);
        if (pred(mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return hi;
}

std::optional<long>
smallestTrueGalloping(const std::function<bool(long)> &pred, long lo,
                      long hi)
{
    GSKU_REQUIRE(lo <= hi, "smallestTrueGalloping requires lo <= hi");
    if (pred(lo)) {
        return lo;
    }
    // Gallop with doubling steps: probe lo+1, lo+3, lo+7, ... clamped
    // to hi. `floor` tracks the largest value known false. All bracket
    // arithmetic goes through the unsigned helpers: near-LONG_MAX
    // brackets overflowed the old signed `hi - probe` / `probe + step`.
    long floor = lo;
    long probe = lo;
    unsigned long step = 1;
    while (probe < hi) {
        probe = (bracketWidth(probe, hi) > step)
                    ? bracketAdvance(probe, step)
                    : hi;
        if (pred(probe)) {
            // Bisect the bracket (floor, probe]; pred(probe) is true.
            long left = floor + 1;
            long right = probe;
            while (left < right) {
                const long mid =
                    bracketAdvance(left, bracketWidth(left, right) / 2);
                if (pred(mid)) {
                    right = mid;
                } else {
                    left = mid + 1;
                }
            }
            return right;
        }
        floor = probe;
        if (step <= (std::numeric_limits<unsigned long>::max() / 2)) {
            step *= 2;
        }
    }
    return std::nullopt;        // pred(hi) was probed false.
}

} // namespace gsku
