/**
 * @file
 * Sampling distributions used by the trace generator and failure models.
 *
 * Each distribution owns its parameters and samples from a caller-provided
 * Rng, so a single generator can drive many distributions with a
 * reproducible interleaving. Inverse-CDF sampling keeps streams identical
 * across standard-library implementations.
 */
#pragma once

#include <vector>

#include "common/rng.h"

namespace gsku {

/** Exponential distribution with rate lambda (mean 1/lambda). */
class Exponential
{
  public:
    explicit Exponential(double rate);

    double sample(Rng &rng) const;
    double mean() const { return 1.0 / rate_; }

  private:
    double rate_;
};

/** Log-normal distribution parameterized by the underlying normal. */
class LogNormal
{
  public:
    LogNormal(double mu, double sigma);

    /** Construct from the distribution's own mean/median shape. */
    static LogNormal fromMedianAndSigma(double median, double sigma);

    double sample(Rng &rng) const;
    double mean() const;
    double median() const;

  private:
    double mu_;
    double sigma_;
};

/** Bounded Pareto on [lo, hi] with tail index alpha. */
class BoundedPareto
{
  public:
    BoundedPareto(double alpha, double lo, double hi);

    double sample(Rng &rng) const;

  private:
    double alpha_;
    double lo_;
    double hi_;
};

/**
 * Discrete distribution over indices 0..n-1 with given non-negative
 * weights (not necessarily normalized). Sampling is O(log n).
 */
class Discrete
{
  public:
    explicit Discrete(std::vector<double> weights);

    std::size_t sample(Rng &rng) const;
    std::size_t size() const { return cumulative_.size(); }

    /** Normalized probability of index i. */
    double probability(std::size_t i) const;

  private:
    std::vector<double> cumulative_;
    double total_;
};

} // namespace gsku
