#include "common/contracts.h"

#include <sstream>

namespace gsku::contracts {
namespace detail {

void
contractFailure(const char *kind, const char *cond, const char *file,
                int line, const std::string &msg)
{
    std::ostringstream out;
    out << "contract violated: " << kind << "(" << cond << "): " << msg;
    ::gsku::detail::throwInternalError(file, line, out.str());
}

} // namespace detail
} // namespace gsku::contracts
