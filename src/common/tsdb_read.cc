#include "common/tsdb_read.h"

#include <fstream>
#include <iterator>

#include "common/error.h"

namespace gsku::obs {

namespace {

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    GSKU_REQUIRE(in.is_open(), "tsdb '" + path + "': cannot open");
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

bool
bytesEqual(const std::string &bytes, std::size_t off, const char *want,
           std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (bytes[off + i] != want[i])
            return false;
    return true;
}

constexpr char kMagic[8] = {'G', 'S', 'K', 'U', 'T', 'S', 'B', '1'};
constexpr char kEndMagic[8] = {'G', 'S', 'K', 'U', 'T', 'S', 'B', 'E'};

/**
 * Single parser for both modes. In strict mode every violation throws
 * UserError naming the byte offset (mirroring BinaryTraceReader's
 * diagnostics); in tail mode structural trouble past the header just
 * ends the parse at the last good frame.
 */
TimeseriesData
parse(const std::string &path, bool strict)
{
    const std::string bytes = readWholeFile(path);
    auto fail = [&](const std::string &msg) {
        GSKU_REQUIRE(false, "tsdb '" + path + "': " + msg);
    };

    // ----- Header: strict in both modes. -----
    if (bytes.size() < kTsdbHeaderFixed) {
        fail("truncated header: " + std::to_string(bytes.size()) +
             " bytes, need at least " +
             std::to_string(kTsdbHeaderFixed));
    }
    if (!bytesEqual(bytes, 0, kMagic, sizeof kMagic))
        fail("bad magic at offset 0");
    const std::uint32_t version = tsdb::loadU32(bytes, 8);
    if (version != kTsdbVersion) {
        fail("unsupported version " + std::to_string(version) +
             " at offset 8 (reader speaks " +
             std::to_string(kTsdbVersion) + ")");
    }
    const std::uint32_t header_size = tsdb::loadU32(bytes, 12);
    if (header_size < kTsdbHeaderFixed || header_size > bytes.size() ||
        header_size % 8 != 0) {
        fail("bad header_size " + std::to_string(header_size) +
             " at offset 12");
    }
    TimeseriesData data;
    data.sample_every = tsdb::loadU64(bytes, 16);
    if (data.sample_every == 0)
        fail("bad sample_every 0 at offset 16");
    const std::uint32_t flags = tsdb::loadU32(bytes, 24);
    if ((flags & ~1u) != 0) {
        fail("unknown header flags 0x" + std::to_string(flags) +
             " at offset 24");
    }
    data.volatile_lane = (flags & 1u) != 0;
    const std::uint32_t name_len = tsdb::loadU32(bytes, 28);
    if (kTsdbHeaderFixed + name_len > header_size) {
        fail("name overruns header (name_len " +
             std::to_string(name_len) + " at offset 28)");
    }
    data.program = bytes.substr(kTsdbHeaderFixed, name_len);

    // ----- Locate the footer (mandatory in strict mode). -----
    bool footer_present =
        bytes.size() >= header_size + kTsdbFooterSize &&
        bytesEqual(bytes, bytes.size() - sizeof kEndMagic, kEndMagic,
                   sizeof kEndMagic);
    if (strict) {
        if (bytes.size() < header_size + kTsdbFooterSize) {
            fail("truncated: " + std::to_string(bytes.size()) +
                 " bytes leave no room for the 40-byte footer");
        }
        if (!footer_present) {
            fail("bad end magic at offset " +
                 std::to_string(bytes.size() - sizeof kEndMagic));
        }
    }
    const std::size_t frames_end = footer_present
                                       ? bytes.size() - kTsdbFooterSize
                                       : bytes.size();

    // ----- Frames. -----
    std::uint64_t frames_fnv = tsdb::kFnvOffset;
    std::uint64_t counted_frames = 0;
    std::size_t off = header_size;
    bool clean_tiling = true;
    while (off < frames_end) {
        if (off + 8 > frames_end) {
            if (strict)
                fail("truncated frame header at offset " +
                     std::to_string(off));
            clean_tiling = false;
            break;
        }
        const std::uint32_t kind = tsdb::loadU32(bytes, off);
        const std::uint32_t payload_len = tsdb::loadU32(bytes, off + 4);
        const std::size_t padded =
            8 + ((static_cast<std::size_t>(payload_len) + 7) & ~std::size_t{7});
        if (off + padded > frames_end) {
            if (strict) {
                fail("frame at offset " + std::to_string(off) +
                     " overruns the frame region (payload_len " +
                     std::to_string(payload_len) + ")");
            }
            clean_tiling = false;
            break;
        }
        const std::size_t p = off + 8; // payload offset
        bool checksummed = false;
        if (kind == 1) {
            if (payload_len < 8 ||
                payload_len !=
                    8u + tsdb::loadU16(bytes, p + 6)) {
                if (strict)
                    fail("bad series-def frame at offset " +
                         std::to_string(off));
                clean_tiling = false;
                break;
            }
            const std::uint32_t id = tsdb::loadU32(bytes, p);
            if (id != data.series.size()) {
                if (strict) {
                    fail("series id " + std::to_string(id) +
                         " out of order at offset " +
                         std::to_string(off) + " (expected " +
                         std::to_string(data.series.size()) + ")");
                }
                clean_tiling = false;
                break;
            }
            const unsigned char value_type =
                static_cast<unsigned char>(bytes[p + 4]);
            const unsigned char def_flags =
                static_cast<unsigned char>(bytes[p + 5]);
            if (value_type > 1 || def_flags > 1) {
                if (strict)
                    fail("bad series-def frame at offset " +
                         std::to_string(off));
                clean_tiling = false;
                break;
            }
            TsdbSeries series;
            series.id = id;
            series.is_double = value_type == 1;
            series.is_volatile = (def_flags & 1) != 0;
            series.name =
                bytes.substr(p + 8, tsdb::loadU16(bytes, p + 6));
            data.series.push_back(series);
            checksummed = !series.is_volatile;
        } else if (kind == 2) {
            if (payload_len != 16) {
                if (strict)
                    fail("bad sample-begin frame at offset " +
                         std::to_string(off));
                clean_tiling = false;
                break;
            }
            TsdbSample sample;
            sample.clock = tsdb::loadU64(bytes, p);
            sample.seq = tsdb::loadU64(bytes, p + 8);
            if (sample.seq != data.samples.size()) {
                if (strict) {
                    fail("sample seq " + std::to_string(sample.seq) +
                         " at offset " + std::to_string(off) +
                         " (expected " +
                         std::to_string(data.samples.size()) + ")");
                }
                clean_tiling = false;
                break;
            }
            if (!data.samples.empty() &&
                sample.clock <= data.samples.back().clock) {
                if (strict) {
                    fail("logical clock not increasing at offset " +
                         std::to_string(off) + " (" +
                         std::to_string(sample.clock) + " after " +
                         std::to_string(data.samples.back().clock) +
                         ")");
                }
                clean_tiling = false;
                break;
            }
            data.samples.push_back(sample);
            checksummed = true;
        } else if (kind == 3) {
            if (payload_len != 16 ||
                tsdb::loadU32(bytes, p + 4) != 0) {
                if (strict)
                    fail("bad point frame at offset " +
                         std::to_string(off));
                clean_tiling = false;
                break;
            }
            if (data.samples.empty()) {
                if (strict)
                    fail("point before any sample at offset " +
                         std::to_string(off));
                clean_tiling = false;
                break;
            }
            TsdbPoint point;
            point.series = tsdb::loadU32(bytes, p);
            if (point.series >= data.series.size()) {
                if (strict) {
                    fail("point references undefined series " +
                         std::to_string(point.series) +
                         " at offset " + std::to_string(off));
                }
                clean_tiling = false;
                break;
            }
            point.bits = tsdb::loadU64(bytes, p + 8);
            data.samples.back().points.push_back(point);
            checksummed = !data.series[point.series].is_volatile;
        } else if (kind == 4) {
            if (payload_len != 8 || data.samples.empty()) {
                if (strict)
                    fail("bad wall-clock frame at offset " +
                         std::to_string(off));
                clean_tiling = false;
                break;
            }
            data.samples.back().has_wall = true;
            data.samples.back().wall_seconds =
                tsdb::doubleOfBits(tsdb::loadU64(bytes, p));
        } else {
            if (strict) {
                fail("unknown frame kind " + std::to_string(kind) +
                     " at offset " + std::to_string(off));
            }
            clean_tiling = false;
            break;
        }
        if (checksummed) {
            frames_fnv =
                tsdb::fnvUpdate(frames_fnv, bytes, off, padded);
        }
        ++counted_frames;
        off += padded;
    }
    data.bytes_parsed = off;

    // ----- Footer. -----
    if (footer_present && clean_tiling && off == frames_end) {
        const std::size_t f = frames_end;
        const std::uint64_t frame_count = tsdb::loadU64(bytes, f);
        const std::uint64_t sample_count =
            tsdb::loadU64(bytes, f + 8);
        const std::uint64_t want_frames_fnv =
            tsdb::loadU64(bytes, f + 16);
        const std::uint64_t want_header_fnv =
            tsdb::loadU64(bytes, f + 24);
        if (strict) {
            if (frame_count != counted_frames) {
                fail("footer frame_count " +
                     std::to_string(frame_count) + " at offset " +
                     std::to_string(f) + " (counted " +
                     std::to_string(counted_frames) + ")");
            }
            if (sample_count != data.samples.size()) {
                fail("footer sample_count " +
                     std::to_string(sample_count) + " at offset " +
                     std::to_string(f + 8) + " (counted " +
                     std::to_string(data.samples.size()) + ")");
            }
            if (want_frames_fnv != frames_fnv) {
                fail("frames checksum mismatch at offset " +
                     std::to_string(f + 16));
            }
            const std::uint64_t header_fnv = tsdb::fnvUpdate(
                tsdb::kFnvOffset, bytes, 0, header_size);
            if (want_header_fnv != header_fnv) {
                fail("header checksum mismatch at offset " +
                     std::to_string(f + 24));
            }
        }
        data.complete = frame_count == counted_frames &&
                        sample_count == data.samples.size();
        data.frame_count = frame_count;
        if (data.complete)
            data.bytes_parsed = bytes.size();
    }
    return data;
}

} // namespace

TimeseriesData
readTsdb(const std::string &path)
{
    return parse(path, /*strict=*/true);
}

TimeseriesData
readTsdbTail(const std::string &path)
{
    return parse(path, /*strict=*/false);
}

} // namespace gsku::obs
