/**
 * @file
 * Fleet-scale trace-engine benchmark: streams a multi-million-event
 * synthetic cluster-year straight into a `gsku-trace-v1` binary file
 * (no in-memory trace is ever built), then replays it through
 *
 *   - the streaming binary path (BinaryTraceReader -> VmAllocator),
 *   - the materializing path (readTraceBinary -> VmTrace replay), and
 *   - the streaming CSV path (writeTraceCsv -> CsvTraceReader),
 *
 * checksumming every replay outcome and the allocator counter deltas.
 * All three paths must be byte-identical — the determinism contract of
 * the trace engine — and the driver exits nonzero if they diverge.
 * BENCH_fleet.json records events/sec per leg plus the peak-RSS
 * high-water mark (getrusage) after each leg, which is how the
 * streaming path's O(peak-live) memory shows up against the
 * materializing path's O(trace).
 *
 * Live telemetry: `--tsdb <path>` (or `GSKU_TSDB=<path>`) streams
 * periodic metrics samples to a `gsku-tsdb-v1` file while the legs
 * run — watch with `gsku_top --follow`. With `GSKU_FLIGHT=<path>` the
 * driver also publishes an on-demand flight-recorder dump at exit so
 * CI archives a post-mortem artifact even from healthy runs.
 *
 * Deterministic profiling: `--profile <path>` (or
 * `GSKU_PROFILE=<path>`) writes a `gsku-profile-v1` work-unit profile
 * plus a flamegraph-compatible <path>.collapsed — byte-identical at
 * any thread count (obs/profile.h); render with `gsku_prof`.
 *
 * Usage: bench_fleet [events] [--events N] [--tsdb <path>]
 *        [--profile <path>]
 *        (default 10,000,000 events; CI smoke: 100000)
 */
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "carbon/catalog.h"
#include "cluster/allocator.h"
#include "cluster/trace_binary.h"
#include "cluster/trace_gen.h"
#include "cluster/trace_io.h"
#include "cluster/trace_stats.h"
#include "common/error.h"
#include "common/parse.h"
#include "common/table.h"
#include "obs/flightrec.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "perf/app.h"

namespace {

using gsku::bench::maxRssKb;

void
addReplay(gsku::bench::Checksum &sum,
          const gsku::cluster::MultiReplayResult &r)
{
    auto add_group = [&sum](const gsku::cluster::GroupMetrics &g) {
        sum.add(static_cast<double>(g.servers));
        sum.add(static_cast<double>(g.vms_placed));
        sum.add(g.mean_core_packing);
        sum.add(g.mean_mem_packing);
        sum.add(g.mean_max_mem_utilization);
    };
    sum.add(r.success ? 1.0 : 0.0);
    sum.add(static_cast<double>(r.placed));
    sum.add(static_cast<double>(r.rejected));
    add_group(r.baseline);
    for (const gsku::cluster::GroupMetrics &g : r.greens) {
        add_group(g);
    }
    sum.add(static_cast<double>(r.green_placed));
    sum.add(static_cast<double>(r.green_fallbacks));
}

/** Allocator counter deltas across one replay leg; folded into the
 *  leg checksum so the metrics pipeline is part of the parity check. */
void
addCounterDeltas(gsku::bench::Checksum &sum,
                 const gsku::obs::MetricsSnapshot &before,
                 const gsku::obs::MetricsSnapshot &after)
{
    for (const char *name :
         {"allocator.placements", "allocator.rejections",
          "allocator.green_fallbacks", "allocator.evictions"}) {
        sum.add(static_cast<double>(after.counter(name) -
                                    before.counter(name)));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gsku;

    obs::metrics().reset();

    std::uint64_t events = 10'000'000;
    std::string tsdb_path;
    std::string profile_path;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--events" && i + 1 < argc) {
                events = parseU64(argv[++i],
                                  ParseContext{"bench_fleet", 0,
                                               "events"});
            } else if (arg == "--tsdb" && i + 1 < argc) {
                tsdb_path = argv[++i];
            } else if (arg == "--profile" && i + 1 < argc) {
                profile_path = argv[++i];
            } else if (!arg.empty() && arg[0] != '-') {
                events = parseU64(arg, ParseContext{"bench_fleet", 0,
                                                    "events"});
            } else {
                std::cerr << "bench_fleet: unknown option '" << arg
                          << "'\nusage: bench_fleet [events] "
                             "[--events N] [--tsdb <path>] "
                             "[--profile <path>]\n";
                return 2;
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "bench_fleet: " << e.what() << '\n';
        return 2;
    }
    if (events < 1000) {
        std::cerr << "bench_fleet: need at least 1000 events\n";
        return 2;
    }

    obs::flightRecordProgram("bench_fleet");
    if (!tsdb_path.empty()) {
        obs::startTimeseries(tsdb_path);
    }
    obs::setProfileProgram("bench_fleet");
    if (!profile_path.empty()) {
        obs::startProfile();
    }

    // One simulated year; Little's law sizes the steady-state
    // population so ~events/2 VMs (arrival + departure = 2 events)
    // arrive over the year. The 1.35 margin absorbs the generator's
    // per-seed lifetime jitter (~1.29 for seed 42) so the requested
    // event count is a floor, not a ceiling.
    const std::uint64_t seed = 42;
    cluster::TraceGenParams params;
    params.duration_h = 24.0 * 365.0;
    params.mean_lifetime_h = 48.0;
    params.load_jitter = 0.0;
    const double vms_target = static_cast<double>(events) / 2.0;
    params.target_concurrent_vms = 1.35 * vms_target *
                                   params.mean_lifetime_h /
                                   params.duration_h;
    const cluster::TraceGenerator generator(params);

    const std::string bin_path = "bench_fleet_trace.gskutrc";
    const std::string csv_path = "bench_fleet_trace.csv";

    struct Leg
    {
        std::string name;
        double seconds = 0.0;
        double events_per_sec = 0.0;
        std::string checksum;
        std::int64_t max_rss_kb = 0;
    };
    std::vector<Leg> legs;

    // Leg 1: stream the synthetic year straight to disk.
    bench::WallTimer timer;
    const std::uint64_t vms = generator.generateToBinary(seed, bin_path);
    {
        Leg leg;
        leg.name = "generate";
        leg.seconds = timer.seconds();
        leg.events_per_sec =
            leg.seconds > 0.0 ? 2.0 * static_cast<double>(vms) /
                                    leg.seconds
                              : 0.0;
        bench::Checksum sum;
        sum.add(static_cast<double>(vms));
        leg.checksum = sum.hex();
        leg.max_rss_kb = maxRssKb();
        legs.push_back(leg);
        obs::telemetryTick();
    }
    const double total_events = 2.0 * static_cast<double>(vms);
    std::cout << "bench_fleet: " << vms << " VMs ("
              << static_cast<std::uint64_t>(total_events)
              << " events) over " << params.duration_h << " h\n\n";

    std::uint64_t content_digest = 0;

    // Leg 2: streaming workload summary (peaks via the shared sweep).
    cluster::TraceStats stats;
    timer.reset();
    {
        cluster::BinaryTraceReader reader(bin_path);
        stats = cluster::summarizeTrace(reader);
        content_digest = reader.contentDigest();
        Leg leg;
        leg.name = "stats_stream";
        leg.seconds = timer.seconds();
        leg.events_per_sec =
            leg.seconds > 0.0 ? total_events / leg.seconds : 0.0;
        bench::Checksum sum;
        sum.add(static_cast<double>(stats.vm_count));
        sum.add(static_cast<double>(stats.peak_concurrent_cores));
        sum.add(stats.peak_concurrent_memory_gb);
        sum.add(stats.mean_population);
        sum.add(stats.cores.mean());
        sum.add(stats.memory_gb.mean());
        sum.add(stats.lifetime_h.mean());
        sum.add(stats.touch_fraction.mean());
        leg.checksum = sum.hex();
        leg.max_rss_kb = maxRssKb();
        legs.push_back(leg);
        obs::telemetryTick();
    }

    // Cluster sized off the streamed peaks: a 15% headroom baseline
    // group plus a GreenSKU group that Gen1/Gen2 VMs adopt at a 1.05
    // resource inflation (the fleet-refresh shape of the paper).
    const carbon::ServerSku baseline_sku = carbon::StandardSkus::baseline();
    const carbon::ServerSku green_sku = carbon::StandardSkus::greenFull();
    cluster::AdoptionTable adoption = cluster::AdoptionTable::none();
    for (std::size_t app = 0; app < perf::AppCatalog::all().size();
         ++app) {
        adoption.set(app, carbon::Generation::Gen1,
                     cluster::AdoptionDecision{true, 1.05});
        adoption.set(app, carbon::Generation::Gen2,
                     cluster::AdoptionDecision{true, 1.05});
    }
    cluster::MultiClusterSpec spec;
    spec.baseline_sku = baseline_sku;
    spec.baselines = static_cast<int>(
        std::ceil(1.15 * stats.peak_concurrent_cores /
                  static_cast<double>(baseline_sku.cores)));
    cluster::GreenGroupSpec green_group;
    green_group.sku = green_sku;
    green_group.count = static_cast<int>(
        std::ceil(0.30 * stats.peak_concurrent_cores /
                  static_cast<double>(green_sku.cores)));
    green_group.adoption = adoption;
    spec.greens.push_back(green_group);

    cluster::ReplayOptions options;
    options.stop_on_reject = false;
    const cluster::VmAllocator allocator(options);

    auto replay_leg = [&](const std::string &name,
                          auto &&body) -> const Leg & {
        const obs::MetricsSnapshot before = obs::metrics().snapshot();
        timer.reset();
        const cluster::MultiReplayResult result = body();
        Leg leg;
        leg.name = name;
        leg.seconds = timer.seconds();
        leg.events_per_sec =
            leg.seconds > 0.0 ? total_events / leg.seconds : 0.0;
        bench::Checksum sum;
        addReplay(sum, result);
        addCounterDeltas(sum, before, obs::metrics().snapshot());
        leg.checksum = sum.hex();
        leg.max_rss_kb = maxRssKb();
        legs.push_back(leg);
        // Leg boundary: one serial tick so the sampler can flush a
        // sample covering the leg's tail before the next leg starts.
        obs::telemetryTick();
        return legs.back();
    };

    // Leg 3: streaming replay from the binary file (the hot path).
    replay_leg("replay_binary", [&] {
        cluster::BinaryTraceReader reader(bin_path);
        return allocator.replay(reader, spec);
    });

    // Leg 4: the old path — materialize the whole trace, then replay.
    replay_leg("replay_materialized", [&] {
        const cluster::VmTrace trace = cluster::readTraceBinary(bin_path);
        return allocator.replay(trace, spec);
    });

    // Leg 5: streaming replay from CSV (parity across encodings; also
    // the honest cost of the text format at fleet scale).
    {
        const cluster::VmTrace trace = cluster::readTraceBinary(bin_path);
        std::ofstream csv(csv_path, std::ios::trunc);
        if (!csv.is_open()) {
            std::cerr << "bench_fleet: cannot write " << csv_path
                      << '\n';
            return 2;
        }
        cluster::writeTraceCsv(trace, csv);
    }
    replay_leg("replay_csv", [&] {
        cluster::CsvTraceReader reader(csv_path);
        return allocator.replay(reader, spec);
    });

    const std::string &replay_checksum = legs[2].checksum;
    bool identical = true;
    for (std::size_t i = 3; i < legs.size(); ++i) {
        identical = identical && legs[i].checksum == replay_checksum;
    }

    Table table({"Leg", "Wall (s)", "Events/s", "Max RSS (MB)",
                 "Checksum"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Left});
    std::vector<bench::JsonObject> json_legs;
    for (const Leg &leg : legs) {
        table.addRow({leg.name, Table::num(leg.seconds, 3),
                      Table::num(leg.events_per_sec, 0),
                      Table::num(static_cast<double>(leg.max_rss_kb) /
                                     1024.0,
                                 1),
                      leg.checksum});
        bench::JsonObject j;
        j.field("leg", leg.name)
            .field("seconds", leg.seconds)
            .field("events_per_sec", leg.events_per_sec)
            .field("max_rss_kb", leg.max_rss_kb)
            .field("checksum", leg.checksum);
        json_legs.push_back(j);
    }
    std::cout << table.render() << '\n';

    char digest_hex[17];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                  static_cast<unsigned long long>(content_digest));
    bench::JsonObject doc;
    doc.field("benchmark", std::string("fleet_trace_replay"))
        .field("events", static_cast<std::int64_t>(total_events))
        .field("vms", static_cast<std::int64_t>(vms))
        .field("duration_h", params.duration_h)
        .field("content_digest", std::string(digest_hex))
        .field("checksums_identical", identical)
        .array("legs", json_legs);
    const std::string path = "BENCH_fleet.json";
    if (!doc.writeFile(path)) {
        std::cerr << "bench_fleet: failed to write " << path << '\n';
        return 2;
    }
    std::cout << "wrote " << path << '\n';

    obs::RunManifest manifest("bench_fleet");
    manifest.config("events", static_cast<std::int64_t>(total_events))
        .config("vms", static_cast<std::int64_t>(vms))
        .config("duration_h", params.duration_h)
        .config("content_digest", std::string(digest_hex))
        .config("checksums_identical", identical)
        .seed("trace", seed);
    const std::string manifest_path = "MANIFEST_bench_fleet.json";
    if (!manifest.write(manifest_path)) {
        std::cerr << "bench_fleet: failed to write " << manifest_path
                  << '\n';
        return 2;
    }
    std::cout << "wrote " << manifest_path << '\n';

    std::remove(bin_path.c_str());
    std::remove(csv_path.c_str());

    // Finalize telemetry (footer + checksums) and, when the flight
    // recorder is armed, publish an on-demand post-mortem so CI can
    // archive the artifact from a healthy run too.
    obs::finishTimeseries();
    if (!profile_path.empty() && !obs::writeProfile(profile_path)) {
        std::cerr << "bench_fleet: failed to write " << profile_path
                  << '\n';
        return 2;
    }
    if (obs::flightRecorderEnabled()) {
        obs::dumpFlightRecorder("bench_fleet-exit");
    }

    if (!identical) {
        std::cerr << "bench_fleet: CHECKSUM MISMATCH across replay "
                     "paths - binary/materialized/CSV replays are not "
                     "byte-identical\n";
        return 1;
    }
    std::cout << "replay checksums identical across binary, "
                 "materialized, and CSV paths\n";
    return 0;
}
