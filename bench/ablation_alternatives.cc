/**
 * @file
 * Reproduces the §VII-B comparisons: how much extra renewable energy,
 * uniform compute-server energy efficiency, or server-lifetime extension
 * is needed to match the GreenSKUs' savings.
 */
#include <iostream>

#include "carbon/model.h"
#include "common/table.h"
#include "gsf/alternatives.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::gsf;

    obs::metrics().reset();
    const carbon::ModelParams params;
    const carbon::FleetComposition fleet;
    const AlternativesAnalysis analysis(params, fleet);

    const carbon::CarbonModel model(params);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const double full_per_core =
        model.savingsVs(baseline, carbon::StandardSkus::greenFull())
            .total_savings;
    const carbon::DataCenterModel dc;
    // GreenSKU-Full's DC-wide savings: open-data cluster savings chain
    // lands near 8% (§VI; see fig11_intensity_sweep).
    const double dc_target = 0.08;

    std::cout << "Sec. VII-B: alternative strategies matched against "
                 "GreenSKU-Full's savings\n\n";

    Table table({"Strategy", "Required to match", "Paper reports"},
                {Align::Left, Align::Right, Align::Right});
    table.addRow({"Increase renewables (pp of DC energy, for " +
                      Table::percent(dc_target) + " DC-wide savings)",
                  Table::num(analysis.requiredRenewableIncrease(dc_target) *
                                 100.0,
                             1) + " pp",
                  "2.6 pp"});
    table.addRow({"Compute energy-efficiency gain (for " +
                      Table::percent(dc_target) + " DC-wide savings)",
                  Table::percent(analysis.requiredEfficiencyGain(dc_target),
                                 0),
                  "28%"});
    table.addRow(
        {"Server lifetime extension (for " +
             Table::percent(full_per_core) + " per-core savings)",
         "6 -> " +
             Table::num(
                 analysis.requiredLifetimeYears(baseline, full_per_core),
                 1) +
             " years",
         "6 -> 13 years"});
    std::cout << table.render() << '\n';

    std::cout << "Context: the US grid's renewable share grew only "
                 "~1.2 pp/year over the last five years, and a Zen3->Zen4 "
                 "upgrade (two years) bought ~25% efficiency -- each "
                 "alternative is a multi-year program (Sec. VII-B).\n";
    std::cout << "Note: the renewable-increase solve uses our open "
                 "fleet/intensity data; the paper's 2.6 pp uses internal "
                 "numbers (see EXPERIMENTS.md).\n";

    obs::RunManifest manifest("ablation_alternatives");
    manifest.config("dc_target_savings", dc_target)
        .config("full_per_core_savings", full_per_core)
        .config("required_renewable_pp",
                analysis.requiredRenewableIncrease(dc_target) * 100.0)
        .config("required_efficiency_gain",
                analysis.requiredEfficiencyGain(dc_target))
        .config("required_lifetime_years",
                analysis.requiredLifetimeYears(baseline, full_per_core));
    if (!manifest.write("MANIFEST_ablation_alternatives.json")) {
        std::cerr << "ablation_alternatives: failed to write manifest\n";
        return 2;
    }
    return 0;
}
