/**
 * @file
 * Reproduces Fig. 1: the carbon breakdown of general-purpose data centers
 * — operational and embodied emissions by category, the compute-server
 * component split, and the §II headline percentages, for both the
 * Azure-like renewable mix and the hypothetical 100%-renewable mix.
 */
#include <iostream>

#include "carbon/datacenter.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::carbon;

    obs::metrics().reset();
    const DataCenterModel model;

    auto print = [&](const char *title, const FleetComposition &fleet) {
        const DcBreakdown bd = model.breakdown(fleet);
        std::cout << title << "\n";
        std::cout << "  effective carbon intensity: "
                  << Table::num(fleet.effectiveIntensity().asKgPerKwh(), 3)
                  << " kgCO2e/kWh\n\n";

        Table cat({"Category", "Operational", "Embodied"},
                  {Align::Left, Align::Right, Align::Right});
        for (const char *name : {"compute", "storage", "network"}) {
            cat.addRow({name,
                        Table::percent(bd.operational_by_category.at(name)),
                        Table::percent(bd.embodied_by_category.at(name))});
        }
        cat.addRow({"cooling+power",
                    Table::percent(
                        bd.operational_by_category.at("cooling+power")),
                    "-"});
        cat.addRow({"building+non-IT", "-",
                    Table::percent(
                        bd.embodied_by_category.at("building+non-IT"))});
        std::cout << cat.render() << '\n';

        Table comp({"Compute-server component", "Share of op+emb"},
                   {Align::Left, Align::Right});
        for (const auto &[name, share] : bd.compute_by_component) {
            comp.addRow({name, Table::percent(share)});
        }
        std::cout << comp.render() << '\n';

        std::cout << "  operational share of total: "
                  << Table::percent(bd.operational_share_of_total)
                  << "   compute share of total: "
                  << Table::percent(bd.compute_share_of_total) << "\n\n";
    };

    std::cout << "Fig. 1 / Sec. II: carbon breakdown of general-purpose "
                 "data centers\n\n";

    FleetComposition azure;
    print("[A] Azure-like renewable mix (60% location-matched)", azure);

    FleetComposition green = azure;
    green.renewable_fraction = 1.0;
    print("[B] Hypothetical 100% renewable mix", green);

    std::cout
        << "Paper anchors (Sec. II): operational ~58% of total; compute "
           "servers ~57% of DC emissions;\n  within compute: DRAM 35%, "
           "SSD 28%, CPU 24%; at 100% renewables operational ~9% and "
           "compute ~44%.\n";

    obs::RunManifest manifest("fig01_carbon_breakdown");
    manifest
        .config("azure_renewable_fraction", azure.renewable_fraction)
        .config("azure_operational_share",
                model.breakdown(azure).operational_share_of_total)
        .config("green_operational_share",
                model.breakdown(green).operational_share_of_total);
    if (!manifest.write("MANIFEST_fig01_carbon_breakdown.json")) {
        std::cerr << "fig01_carbon_breakdown: failed to write manifest\n";
        return 2;
    }
    return 0;
}
