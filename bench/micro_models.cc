/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: carbon
 * model evaluation, queueing percentiles, scaling-factor search, trace
 * generation, allocator replay, and full cluster sizing. These bound the
 * cost of the design-space iteration loop §VIII describes ("hundreds of
 * configurations").
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "carbon/model.h"
#include "cluster/trace_gen.h"
#include "gsf/adoption.h"
#include "gsf/sizing.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "perf/cpu.h"
#include "perf/model.h"
#include "perf/queueing.h"

namespace {

using namespace gsku;

void
BM_CarbonPerCore(benchmark::State &state)
{
    const carbon::CarbonModel model;
    const carbon::ServerSku sku = carbon::StandardSkus::greenFull();
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.perCore(sku));
    }
}
BENCHMARK(BM_CarbonPerCore);

void
BM_SavingsTable(benchmark::State &state)
{
    const carbon::CarbonModel model;
    const auto rows = carbon::StandardSkus::tableFourRows();
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.savingsTable(rows));
    }
}
BENCHMARK(BM_SavingsTable);

void
BM_SojournPercentile(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            perf::percentileSojournMs(10, 200.0, 1700.0, 95.0));
    }
}
BENCHMARK(BM_SojournPercentile);

void
BM_ScalingFactorTable(benchmark::State &state)
{
    const perf::PerfModel model;
    const perf::CpuSpec gen3 = perf::CpuCatalog::genoa();
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.scalingTable(gen3));
    }
}
BENCHMARK(BM_ScalingFactorTable);

void
BM_TraceGeneration(benchmark::State &state)
{
    cluster::TraceGenParams params;
    params.target_concurrent_vms = static_cast<double>(state.range(0));
    params.duration_h = 24.0 * 14.0;
    const cluster::TraceGenerator gen(params);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.generate(seed++));
    }
}
BENCHMARK(BM_TraceGeneration)->Arg(100)->Arg(400);

void
BM_AllocatorReplay(benchmark::State &state)
{
    cluster::TraceGenParams params;
    params.target_concurrent_vms = static_cast<double>(state.range(0));
    params.duration_h = 24.0 * 14.0;
    const cluster::VmTrace trace =
        cluster::TraceGenerator(params).generate(5);
    const int servers = static_cast<int>(
        trace.peakConcurrentCores() / 60 + 2);
    const cluster::ClusterSpec spec{carbon::StandardSkus::baseline(),
                                    carbon::StandardSkus::greenFull(),
                                    servers, 0};
    const cluster::VmAllocator alloc;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            alloc.replay(trace, spec, cluster::AdoptionTable::none()));
    }
}
BENCHMARK(BM_AllocatorReplay)->Arg(100)->Arg(400);

void
BM_ClusterSizing(benchmark::State &state)
{
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 150.0;
    params.duration_h = 24.0 * 7.0;
    const cluster::VmTrace trace =
        cluster::TraceGenerator(params).generate(9);
    const perf::PerfModel perf;
    const carbon::CarbonModel carbon;
    const gsf::AdoptionModel adoption(perf, carbon);
    const auto baseline = carbon::StandardSkus::baseline();
    const auto green = carbon::StandardSkus::greenFull();
    const auto table = adoption.buildTable(baseline, green,
                                           CarbonIntensity::kgPerKwh(0.1));
    const gsf::ClusterSizer sizer;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sizer.size(trace, baseline, green, table));
    }
}
BENCHMARK(BM_ClusterSizing);

} // namespace

// BENCHMARK_MAIN() expanded so the run can end with a manifest: the
// microbench timings themselves live in google-benchmark's own output,
// but the manifest records which build/threads produced them.
int
main(int argc, char **argv)
{
    gsku::obs::metrics().reset();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    gsku::obs::RunManifest manifest("micro_models");
    manifest.config("benchmarks", "carbon, queueing, scaling, trace_gen, "
                                  "allocator, sizing");
    if (!manifest.write("MANIFEST_micro_models.json")) {
        std::cerr << "micro_models: failed to write manifest\n";
        return 2;
    }
    return 0;
}
