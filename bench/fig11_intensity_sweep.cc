/**
 * @file
 * Reproduces Figs. 11/12: end-to-end cluster-level carbon savings
 * relative to all-baseline clusters across a range of grid carbon
 * intensities, for the three GreenSKU configurations, with vertical
 * markers for three Azure data center regions. Also prints the §VI /
 * Appendix A-F chain: average cluster savings -> net data-center
 * savings.
 */
#include <cmath>
#include <iostream>

#include "carbon/datacenter.h"
#include "common/chart.h"
#include "cluster/trace_gen.h"
#include "common/parallel.h"
#include "common/table.h"
#include "gsf/evaluator.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::gsf;

    obs::metrics().reset();

    cluster::TraceGenParams params;
    params.target_concurrent_vms = 600.0;
    params.duration_h = 24.0 * 14.0;
    const std::uint64_t trace_seed = 11;
    const cluster::TraceGenerator gen(params);
    const auto traces = gen.generateFamily(12, /*base_seed=*/trace_seed);

    const GsfEvaluator evaluator{GsfEvaluator::Options{}};
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();

    // The paper's figures plot up to ~0.4 kg/kWh (the europe-north
    // marker plus margin); with open data the per-core Efficient/Full
    // crossover lies beyond this range (~0.9 kg/kWh).
    std::vector<double> grid;
    for (int i = 0; i <= 9; ++i) {
        grid.push_back(0.05 * i);
    }

    const carbon::ServerSku greens[] = {
        carbon::StandardSkus::greenEfficient(),
        carbon::StandardSkus::greenCxl(),
        carbon::StandardSkus::greenFull(),
    };

    std::cout << "Figs. 11/12: cluster-level carbon savings vs carbon "
                 "intensity (" << traces.size() << " traces, "
              << ThreadPool::global().threads()
              << " worker threads; set GSKU_THREADS to override)\n\n";

    // Each sweep fans its per-(trace, adoption-table) sizing jobs out
    // across the worker pool; the loop over the three designs stays
    // serial so every sweep gets the whole pool.
    std::vector<IntensitySweep> sweeps;
    for (const auto &green : greens) {
        sweeps.push_back(evaluator.sweep(traces, baseline, green, grid));
    }

    Table table({"CI (kg/kWh)", "GreenSKU-Efficient", "GreenSKU-CXL",
                 "GreenSKU-Full", "Region"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Left});
    auto region = [](double ci) -> std::string {
        // Estimated grid intensities for three Azure regions (public
        // grid data; DESIGN.md §1).
        auto near = [ci](double x) { return std::abs(ci - x) < 1e-9; };
        if (near(0.05)) {
            return "<- Azure-us-south (est.)";
        }
        if (near(0.15)) {
            return "<- Azure-us-central (est.)";
        }
        if (near(0.35)) {
            return "<- Azure-europe-north (est.)";
        }
        return "";
    };
    for (std::size_t i = 0; i < grid.size(); ++i) {
        table.addRow({Table::num(grid[i], 2),
                      Table::percent(sweeps[0].mean_savings[i], 1),
                      Table::percent(sweeps[1].mean_savings[i], 1),
                      Table::percent(sweeps[2].mean_savings[i], 1),
                      region(grid[i])});
    }
    std::cout << table.render() << '\n';

    // Render the figure itself.
    std::vector<ChartSeries> chart_series;
    const char glyphs[] = {'e', 'x', 'F'};
    for (std::size_t s = 0; s < sweeps.size(); ++s) {
        ChartSeries cs;
        cs.name = sweeps[s].sku_name;
        cs.glyph = glyphs[s];
        for (std::size_t i = 0; i < grid.size(); ++i) {
            cs.points.emplace_back(grid[i],
                                   sweeps[s].mean_savings[i] * 100.0);
        }
        chart_series.push_back(cs);
    }
    ChartOptions chart_opts;
    chart_opts.x_label = "carbon intensity (kgCO2e/kWh)";
    chart_opts.y_label = "cluster savings (%)";
    chart_opts.x_markers = {{0.05, "Azure-us-south (est.)"},
                            {0.15, "Azure-us-central (est.)"},
                            {0.35, "Azure-europe-north (est.)"}};
    std::cout << renderChart(chart_series, chart_opts) << '\n';

    const double avg_full = GsfEvaluator::meanSavings(sweeps[2]);
    const carbon::DataCenterModel dc;
    const carbon::FleetComposition fleet;
    std::cout << "Average cluster-level savings (GreenSKU-Full, over the "
                 "sweep): " << Table::percent(avg_full, 1) << '\n';
    std::cout << "Net data-center savings (compute share "
              << Table::percent(
                     dc.breakdown(fleet).compute_share_of_total, 0)
              << "): "
              << Table::percent(dc.dcSavings(fleet, avg_full), 1)
              << "\n\n";
    std::cout << "Paper anchors: reuse-heavy designs win at low CI, the "
                 "efficient-only design converges at high CI (with open "
                 "data the per-core crossover sits near 0.9 kg/kWh); "
                 "open-data average cluster savings ~14% -> DC ~7%.\n";

    obs::RunManifest manifest("fig11_intensity_sweep");
    manifest.config("traces", static_cast<std::int64_t>(traces.size()))
        .config("intensities", static_cast<std::int64_t>(grid.size()))
        .config("target_concurrent_vms", params.target_concurrent_vms)
        .config("duration_h", params.duration_h)
        .config("skus", std::string("efficient,cxl,full"))
        .config("mean_savings_full", avg_full)
        .seed("trace_family_base", trace_seed);
    if (!manifest.write("MANIFEST_fig11_intensity_sweep.json")) {
        std::cerr << "fig11_intensity_sweep: failed to write manifest\n";
        return 2;
    }
    return 0;
}
