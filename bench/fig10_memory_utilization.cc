/**
 * @file
 * Reproduces Fig. 10: CDF across traces of the mean per-server maximum
 * touched-memory utilization, for a baseline-only cluster and for
 * GreenSKU-CXL servers. The shaded 25% region of the paper is
 * GreenSKU-CXL's CXL-backed memory fraction; servers below 75%
 * utilization never need to touch reused DDR4.
 */
#include <iostream>
#include <vector>

#include "cluster/trace_gen.h"
#include "common/chart.h"
#include "common/stats.h"
#include "common/table.h"
#include "gsf/adoption.h"
#include "gsf/sizing.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::cluster;
    using namespace gsku::gsf;

    obs::metrics().reset();
    TraceGenParams params;
    params.target_concurrent_vms = 250.0;
    params.duration_h = 24.0 * 14.0;
    const TraceGenerator gen(params);
    const auto traces = gen.generateFamily(35, /*base_seed=*/7);

    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenCxl();
    const double local_fraction = 1.0 - green.cxlMemoryFraction();

    const perf::PerfModel perf;
    const carbon::CarbonModel carbon;
    const AdoptionModel adoption(perf, carbon);
    const auto table = adoption.buildTable(baseline, green,
                                           CarbonIntensity::kgPerKwh(0.1));
    const ClusterSizer sizer;

    std::vector<double> base_util;
    std::vector<double> green_util;
    int need_cxl = 0;
    for (const auto &trace : traces) {
        const SizingResult r = sizer.size(trace, baseline, green, table);
        base_util.push_back(
            r.baseline_only_replay.baseline.mean_max_mem_utilization);
        const double g = r.mixed_replay.green.mean_max_mem_utilization;
        green_util.push_back(g);
        need_cxl += g > local_fraction ? 1 : 0;
    }

    std::cout << "Fig. 10: CDF of mean per-server maximum memory "
                 "utilization (" << traces.size() << " traces)\n\n";

    const EmpiricalCdf cdf_b(base_util);
    const EmpiricalCdf cdf_g(green_util);
    Table out({"CDF", "Baseline cluster", "GreenSKU-CXL"},
              {Align::Right, Align::Right, Align::Right});
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        out.addRow({Table::percent(q), Table::percent(cdf_b.quantile(q), 1),
                    Table::percent(cdf_g.quantile(q), 1)});
    }
    std::cout << out.render() << '\n';

    {
        auto cdf_series = [](const char *name, char glyph,
                             const EmpiricalCdf &cdf) {
            ChartSeries s;
            s.name = name;
            s.glyph = glyph;
            for (const auto &[value, fraction] : cdf.curve()) {
                s.points.emplace_back(value * 100.0, fraction);
            }
            return s;
        };
        ChartOptions opts;
        opts.x_label = "mean per-server max memory utilization (%)";
        opts.y_label = "CDF across traces";
        opts.height = 12;
        // The shaded region of the paper starts where local DDR5 ends.
        opts.x_markers = {{local_fraction * 100.0,
                           "local DDR5 ends; CXL region begins"}};
        std::cout << renderChart(
                         {cdf_series("baseline", 'b', cdf_b),
                          cdf_series("GreenSKU-CXL", 'g', cdf_g)},
                         opts)
                  << '\n';
    }

    std::cout << "GreenSKU-CXL local (DDR5) memory fraction: "
              << Table::percent(local_fraction)
              << "; traces whose mean max utilization requires CXL: "
              << need_cxl << "/" << traces.size() << " ("
              << Table::percent(double(need_cxl) / traces.size(), 1)
              << ")\n\n";
    std::cout << "Paper anchors: most traces stay below ~60% utilization; "
                 "only ~3% of traces would dip into the 25% CXL-backed "
                 "region.\n";

    obs::RunManifest manifest("fig10_memory_utilization");
    manifest.config("traces", static_cast<std::int64_t>(traces.size()))
        .config("target_concurrent_vms", params.target_concurrent_vms)
        .config("duration_h", params.duration_h)
        .config("local_memory_fraction", local_fraction)
        .config("traces_needing_cxl", static_cast<std::int64_t>(need_cxl))
        .seed("trace_family_base", 7);
    if (!manifest.write("MANIFEST_fig10_memory_utilization.json")) {
        std::cerr << "fig10_memory_utilization: failed to write manifest\n";
        return 2;
    }
    return 0;
}
