/**
 * @file
 * Reproduces Fig. 8: p95 latency vs load for an application heavily
 * impacted by CXL-attached reused memory (Moses) and one barely impacted
 * (HAProxy), comparing GreenSKU-Efficient and GreenSKU-CXL at the core
 * count each app needs to meet its Gen3 SLO.
 */
#include <cmath>
#include <iostream>

#include "common/chart.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "perf/cpu.h"
#include "perf/model.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::perf;

    obs::metrics().reset();
    const PerfModel model;
    const CpuSpec gen3 = CpuCatalog::genoa();
    const CpuSpec green = CpuCatalog::bergamo();

    std::cout << "Fig. 8: p95 latency vs load with and without "
                 "CXL-backed reused memory\n\n";

    for (const char *name : {"Moses", "HAProxy"}) {
        const AppProfile &app = AppCatalog::byName(name);
        const SloSpec slo = model.slo(app, gen3);
        const ScalingResult sf = model.scalingFactor(app, gen3);
        const int cores = sf.feasible ? sf.green_cores : 12;

        const double peak_plain = model.peakQps(app, green, cores, false);
        const double peak_cxl = model.peakQps(app, green, cores, true);

        std::cout << "== " << name << " (" << cores
                  << " cores) ==  SLO: p95 <= " << Table::num(slo.p95_ms, 2)
                  << " ms up to " << Table::num(slo.load_qps, 0)
                  << " QPS\n";

        Table table({"Load (QPS)", "GreenSKU-Eff p95 (ms)",
                     "GreenSKU-CXL p95 (ms)", "CXL meets SLO"},
                    {Align::Right, Align::Right, Align::Right,
                     Align::Left});
        for (int i = 1; i <= 10; ++i) {
            const double qps = 0.099 * i * peak_plain;
            const double plain =
                model.p95LatencyMs(app, green, cores, qps, false);
            const double cxl =
                model.p95LatencyMs(app, green, cores, qps, true);
            table.addRow({Table::num(qps, 0), Table::num(plain, 2),
                          std::isinf(cxl) ? "saturated"
                                          : Table::num(cxl, 2),
                          std::isinf(cxl) || cxl > slo.p95_ms * 1.02
                              ? "NO"
                              : "yes"});
        }
        std::cout << table.render();

        ChartSeries plain_series;
        plain_series.name = "GreenSKU-Efficient";
        plain_series.glyph = 'o';
        ChartSeries cxl_series;
        cxl_series.name = "GreenSKU-CXL";
        cxl_series.glyph = '#';
        for (int i = 1; i <= 40; ++i) {
            const double qps = 0.0247 * i * peak_plain;
            plain_series.points.emplace_back(
                qps, model.p95LatencyMs(app, green, cores, qps, false));
            cxl_series.points.emplace_back(
                qps, model.p95LatencyMs(app, green, cores, qps, true));
        }
        ChartOptions opts;
        opts.x_label = "load (QPS)";
        opts.y_label = "p95 latency (ms)";
        opts.height = 14;
        std::cout << renderChart({plain_series, cxl_series}, opts);
        std::cout << "  peak: Efficient " << Table::num(peak_plain, 0)
                  << " QPS vs CXL " << Table::num(peak_cxl, 0)
                  << " QPS (reduction "
                  << Table::percent(1.0 - peak_cxl / peak_plain, 1)
                  << ")\n\n";
    }

    std::cout << "Paper anchors: Moses saturates early and fails the SLO "
                 "well before peak under CXL; HAProxy only loses ~11% "
                 "peak throughput.\n";

    obs::RunManifest manifest("fig08_cxl_latency");
    manifest.config("apps", static_cast<std::int64_t>(2))
        .config("heavy_impact_app", "Moses")
        .config("light_impact_app", "HAProxy");
    if (!manifest.write("MANIFEST_fig08_cxl_latency.json")) {
        std::cerr << "fig08_cxl_latency: failed to write manifest\n";
        return 2;
    }
    return 0;
}
