/**
 * @file
 * Tiny benchmark harness shared by the timed bench drivers: a wall
 * timer, an order-sensitive FNV-1a checksum over double bit patterns
 * (so "same numbers, same order" is verifiable across thread counts),
 * and a minimal JSON object writer for machine-readable results
 * (BENCH_*.json artifacts archived by CI).
 *
 * Header-only on purpose: bench/ executables link gsku_* libraries but
 * have no library of their own.
 */
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace gsku::bench {

/**
 * Peak resident set size of the process so far, in kB (0 if the
 * platform cannot report it). Shared by every bench driver so each
 * BENCH_*.json leg records `max_rss_kb` and bench_compare.py's RSS
 * band applies fleet-wide. The value is cumulative over the process —
 * a later leg can only report an equal or larger peak.
 */
inline std::int64_t
maxRssKb()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0) {
        return 0;
    }
    return static_cast<std::int64_t>(usage.ru_maxrss);
}

/** Wall-clock timer; starts on construction. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last reset()). */
    double seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Order-sensitive FNV-1a checksum over the exact bit patterns of the
 * values fed to it. Two runs that produce byte-identical numbers in
 * the same order produce the same checksum; any reordering or
 * last-bit difference changes it.
 */
class Checksum
{
  public:
    void add(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        for (int byte = 0; byte < 8; ++byte) {
            hash_ ^= (bits >> (byte * 8)) & 0xffu;
            hash_ *= 0x100000001b3ull;      // FNV-1a 64-bit prime.
        }
    }

    void add(const std::vector<double> &vs)
    {
        for (double v : vs) {
            add(v);
        }
    }

    std::uint64_t value() const { return hash_; }

    /** Checksum as fixed-width hex, for JSON/stdout. */
    std::string hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        for (int i = 0; i < 16; ++i) {
            out[15 - i] = digits[(hash_ >> (i * 4)) & 0xfu];
        }
        return out;
    }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;    // FNV offset basis.
};

/**
 * Minimal JSON writer: a flat object whose values are numbers,
 * strings, booleans, or arrays of flat objects. Enough for bench
 * artifacts; not a general-purpose serializer.
 */
class JsonObject
{
  public:
    JsonObject &field(const std::string &key, double v)
    {
        std::ostringstream s;
        s.precision(std::numeric_limits<double>::max_digits10);
        s << v;
        return raw(key, s.str());
    }

    JsonObject &field(const std::string &key, std::int64_t v)
    {
        return raw(key, std::to_string(v));
    }

    JsonObject &field(const std::string &key, int v)
    {
        return field(key, static_cast<std::int64_t>(v));
    }

    JsonObject &field(const std::string &key, bool v)
    {
        return raw(key, v ? "true" : "false");
    }

    JsonObject &field(const std::string &key, const std::string &v)
    {
        return raw(key, quote(v));
    }

    JsonObject &array(const std::string &key,
                      const std::vector<JsonObject> &items)
    {
        std::string body = "[";
        for (std::size_t i = 0; i < items.size(); ++i) {
            body += (i ? ", " : "") + items[i].str();
        }
        return raw(key, body + "]");
    }

    std::string str() const { return "{" + body_ + "}"; }

    /** Write the object (plus trailing newline) to @p path atomically:
     *  the full document lands in a temp file first and is published
     *  with rename(), so a reader (or a crash mid-write) never sees a
     *  truncated BENCH_*.json. */
    bool writeFile(const std::string &path) const
    {
        const std::string tmp = path + ".tmp";
        {
            std::ofstream out(tmp, std::ios::trunc);
            out << str() << '\n';
            if (!out) {
                return false;
            }
        }
        return std::rename(tmp.c_str(), path.c_str()) == 0;
    }

  private:
    JsonObject &raw(const std::string &key, const std::string &value)
    {
        body_ += (body_.empty() ? "" : ", ") + quote(key) + ": " + value;
        return *this;
    }

    static std::string quote(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\') {
                out += '\\';
            }
            out += c;
        }
        return out + "\"";
    }

    std::string body_;
};

} // namespace gsku::bench
