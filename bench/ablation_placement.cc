/**
 * @file
 * Ablation: the §V placement rules. Compares best-fit (the production
 * rule) against first-fit and worst-fit on right-sized cluster size and
 * packing density — why rule 1 exists.
 */
#include <iostream>

#include "carbon/model.h"
#include "cluster/allocator.h"
#include "cluster/trace_gen.h"
#include "common/stats.h"
#include "common/table.h"
#include "gsf/sizing.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::cluster;

    obs::metrics().reset();
    TraceGenParams params;
    params.target_concurrent_vms = 250.0;
    params.duration_h = 24.0 * 14.0;
    const auto traces = TraceGenerator(params).generateFamily(10, 31);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();

    std::cout << "Placement-policy ablation (10 traces, baseline-only "
                 "right-sizing)\n\n";

    Table table({"Policy", "Mean servers", "Mean core packing",
                 "Servers vs best-fit"},
                {Align::Left, Align::Right, Align::Right, Align::Right});

    double best_fit_servers = 0.0;
    for (PlacementPolicy policy :
         {PlacementPolicy::BestFit, PlacementPolicy::FirstFit,
          PlacementPolicy::WorstFit}) {
        ReplayOptions opts;
        opts.policy = policy;
        const gsf::ClusterSizer sizer(opts);
        OnlineStats servers;
        OnlineStats packing;
        for (const auto &trace : traces) {
            const int n = sizer.rightSizeBaselineOnly(trace, baseline);
            servers.add(n);
            const VmAllocator alloc(opts);
            const auto replay = alloc.replay(
                trace,
                {baseline, carbon::StandardSkus::greenFull(), n, 0},
                AdoptionTable::none());
            packing.add(replay.baseline.mean_core_packing);
        }
        if (policy == PlacementPolicy::BestFit) {
            best_fit_servers = servers.mean();
        }
        table.addRow(
            {toString(policy), Table::num(servers.mean(), 1),
             Table::num(packing.mean(), 3),
             Table::percent(servers.mean() / best_fit_servers - 1.0, 1)});
    }
    std::cout << table.render() << '\n';
    std::cout << "Reading: best-fit (production rule 1) right-sizes to "
                 "the fewest servers; every extra server is ~"
              << Table::num(
                     carbon::CarbonModel{}
                             .perCore(baseline)
                             .total()
                             .asKg() *
                         baseline.cores / 1000.0,
                     1)
              << " tCO2e of avoidable lifetime emissions.\n";

    obs::RunManifest manifest("ablation_placement");
    manifest.config("traces", static_cast<std::int64_t>(traces.size()))
        .config("target_concurrent_vms", params.target_concurrent_vms)
        .config("duration_h", params.duration_h)
        .config("best_fit_mean_servers", best_fit_servers)
        .seed("trace_family_base", 31);
    if (!manifest.write("MANIFEST_ablation_placement.json")) {
        std::cerr << "ablation_placement: failed to write manifest\n";
        return 2;
    }
    return 0;
}
