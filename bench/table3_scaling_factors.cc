/**
 * @file
 * Reproduces Table III: GreenSKU-Efficient's performance scaling factor
 * for each application, relative to the Gen1/Gen2/Gen3 baselines, with
 * the fleet core-hour share per class.
 */
#include <iostream>

#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "perf/cpu.h"
#include "perf/model.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::perf;

    obs::metrics().reset();
    const PerfModel model;

    std::cout << "Table III: GreenSKU-Efficient scaling factor vs Gen "
                 "1/2/3 per application\n\n";

    Table table({"Application Category", "% Fleet Core Hours",
                 "Application", "Gen1", "Gen2", "Gen3"},
                {Align::Left, Align::Right, Align::Left, Align::Right,
                 Align::Right, Align::Right});

    AppClass last_class = AppClass::DevOps;
    bool first = true;
    for (const auto &app : AppCatalog::all()) {
        const bool new_class = first || app.cls != last_class;
        first = false;
        last_class = app.cls;
        table.addRow(
            {new_class ? toString(app.cls) : "",
             new_class
                 ? Table::num(fleetCoreHourShare(app.cls) * 100.0, 0)
                 : "",
             app.name + (app.production ? " *" : ""),
             model.scalingFactor(app, CpuCatalog::rome()).display(),
             model.scalingFactor(app, CpuCatalog::milan()).display(),
             model.scalingFactor(app, CpuCatalog::genoa()).display()});
    }
    std::cout << table.render() << '\n';
    std::cout << "\"*\" marks Microsoft production applications. A cell "
                 "of \">1.5\" means no candidate VM size (8/10/12 cores) "
                 "meets the SLO.\n";

    obs::RunManifest manifest("table3_scaling_factors");
    manifest.config(
        "apps", static_cast<std::int64_t>(AppCatalog::all().size()));
    if (!manifest.write("MANIFEST_table3_scaling_factors.json")) {
        std::cerr << "table3_scaling_factors: failed to write manifest\n";
        return 2;
    }
    return 0;
}
