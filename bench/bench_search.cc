/**
 * @file
 * Timed benchmark of the simulated-annealing design-space search
 * (gsf/search.h), with a built-in correctness anchor: before timing
 * anything it runs the exhaustive DesignSpaceExplorer over the same
 * default DesignRange and exits nonzero unless the SA engine's best
 * design is exactly the exhaustive rank-1 design. A stochastic search
 * whose result drifted away from ground truth would fail here long
 * before any checksum gate saw it.
 *
 * Then the same anneal runs at 1, 2, and 4 pool threads (via
 * ThreadPool::resetGlobal), checksumming the rendered Pareto archive
 * (names + exact objective bit patterns) and the best design's savings
 * row. The determinism contract of gsf/search.h is that restarts
 * pre-fork their RNG streams and merge in restart order, so every leg
 * must produce byte-identical results; any mismatch exits nonzero.
 *
 * Writes BENCH_search.json (compared against the committed
 * bench/baselines/BENCH_search.baseline.json by tools/bench_compare.py
 * in CI) and MANIFEST_bench_search.json. The evalcache_hits /
 * evalcache_misses fields at the top level let CI assert that a warm
 * eval cache actually serves the search (hits > misses on the second
 * run); bench_compare.py treats them as volatile, like wall times.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "carbon/catalog.h"
#include "common/parallel.h"
#include "common/table.h"
#include "gsf/design_space.h"
#include "gsf/eval_cache.h"
#include "gsf/search.h"
#include "obs/flightrec.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"

namespace {

/** Fold a rendered string into the checksum byte by byte: the archive
 *  render is names plus hex bit patterns, so any renamed point or
 *  last-bit objective drift changes the sum. */
void
addString(gsku::bench::Checksum &sum, const std::string &s)
{
    for (char c : s) {
        sum.add(static_cast<double>(static_cast<unsigned char>(c)));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gsku;
    using namespace gsku::gsf;

    // Per-run metrics isolation: the manifest and the evalcache_* JSON
    // fields carry only this run's counts.
    obs::metrics().reset();

    obs::flightRecordProgram("bench_search");
    obs::setProfileProgram("bench_search");
    std::string profile_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tsdb" && i + 1 < argc) {
            obs::startTimeseries(argv[++i]);
        } else if (arg == "--profile" && i + 1 < argc) {
            profile_path = argv[++i];
            obs::startProfile();
        } else {
            std::cerr << "bench_search: unknown option '" << arg
                      << "'\nusage: bench_search [--tsdb <path>] "
                         "[--profile <path>]\n";
            return 2;
        }
    }

    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const SkuSearch search;
    const SearchOptions options;   // Defaults: the pinned benchmark config.

    // ---- Phase 1: agreement with exhaustive ground truth. ----------
    DesignSpaceExplorer explorer(search.carbonModel(),
                                 search.constraints());
    long considered = 0;
    const std::vector<RankedDesign> exhaustive =
        explorer.explore(baseline, options.range, &considered);
    if (exhaustive.empty()) {
        std::cerr << "bench_search: exhaustive exploration found no "
                     "feasible design\n";
        return 1;
    }

    const SearchResult probe = search.anneal(baseline, options);
    const bool agreement =
        probe.found && probe.best.sku.name == exhaustive.front().sku.name;
    std::cout << "bench_search: exhaustive rank-1 "
              << exhaustive.front().sku.name << " (" << considered
              << " considered, " << exhaustive.size()
              << " feasible), SA best "
              << (probe.found ? probe.best.sku.name : std::string("-"))
              << (agreement ? " [agreement]" : " [MISMATCH]") << "\n\n";
    if (!agreement) {
        std::cerr << "bench_search: SA best design does not match the "
                     "exhaustive optimum - retune SearchOptions\n";
        return 1;
    }

    // ---- Phase 2: thread-count legs. -------------------------------
    const int hw = ThreadPool::defaultThreads();
    const std::vector<int> thread_counts = {1, 2, 4};

    struct Leg
    {
        int threads = 0;
        double seconds = 0.0;
        std::string checksum;
        std::int64_t max_rss_kb = 0;
    };
    std::vector<Leg> legs;

    for (int threads : thread_counts) {
        ThreadPool::resetGlobal(threads);

        const bench::WallTimer timer;
        const SearchResult result = search.anneal(baseline, options);
        const double seconds = timer.seconds();

        bench::Checksum sum;
        addString(sum, result.archive.render());
        addString(sum, result.best.sku.name);
        sum.add(result.best.savings.total_savings);
        sum.add(result.best_objectives.carbon_per_core_kg);
        sum.add(result.best_objectives.tco_per_core_usd);
        sum.add(result.best_objectives.slo_margin);
        sum.add(static_cast<double>(result.stats.evaluations));
        legs.push_back({threads, seconds, sum.hex(), bench::maxRssKb()});
        obs::telemetryTick();
    }
    ThreadPool::resetGlobal(ThreadPool::defaultThreads());

    bool identical = true;
    for (const Leg &leg : legs) {
        identical = identical && leg.checksum == legs.front().checksum;
    }

    Table table({"Threads", "Wall (s)", "Speedup", "Max RSS (MB)",
                 "Checksum"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Left});
    std::vector<bench::JsonObject> json_legs;
    for (const Leg &leg : legs) {
        const double speedup =
            leg.seconds > 0.0 ? legs.front().seconds / leg.seconds : 0.0;
        table.addRow({std::to_string(leg.threads),
                      Table::num(leg.seconds, 3), Table::num(speedup, 2),
                      Table::num(static_cast<double>(leg.max_rss_kb) /
                                     1024.0,
                                 1),
                      leg.checksum});
        bench::JsonObject j;
        j.field("threads", leg.threads)
            .field("seconds", leg.seconds)
            .field("speedup", speedup)
            .field("max_rss_kb", leg.max_rss_kb)
            .field("checksum", leg.checksum);
        json_legs.push_back(j);
    }
    std::cout << table.render() << '\n';

    const obs::MetricsSnapshot metrics = obs::metrics().snapshot();
    const std::int64_t cache_hits =
        static_cast<std::int64_t>(metrics.counter("evalcache.hits"));
    const std::int64_t cache_misses =
        static_cast<std::int64_t>(metrics.counter("evalcache.misses"));

    bench::JsonObject doc;
    doc.field("benchmark", std::string("gsf_sa_search"))
        .field("seed", static_cast<std::int64_t>(options.seed))
        .field("restarts", options.restarts)
        .field("steps", options.steps)
        .field("agreement_with_exhaustive", agreement)
        .field("archive_size", static_cast<std::int64_t>(
                                   legs.empty() ? 0 : probe.archive.size()))
        .field("evalcache_hits", cache_hits)
        .field("evalcache_misses", cache_misses)
        .field("hardware_concurrency", hw)
        .field("checksums_identical", identical)
        .array("legs", json_legs);
    const std::string path = "BENCH_search.json";
    if (!doc.writeFile(path)) {
        std::cerr << "bench_search: failed to write " << path << '\n';
        return 2;
    }
    std::cout << "wrote " << path << '\n';

    obs::RunManifest manifest("bench_search");
    manifest.config("restarts", static_cast<std::int64_t>(options.restarts))
        .config("steps", static_cast<std::int64_t>(options.steps))
        .config("initial_temperature", options.initial_temperature)
        .config("cooling", options.cooling)
        .config("thread_counts", std::string("1,2,4"))
        .config("agreement_with_exhaustive", agreement)
        .config("checksums_identical", identical)
        .config("eval_cache_enabled", evalCache() != nullptr)
        .seed("search", options.seed);
    const std::string manifest_path = "MANIFEST_bench_search.json";
    if (!manifest.write(manifest_path)) {
        std::cerr << "bench_search: failed to write " << manifest_path
                  << '\n';
        return 2;
    }
    std::cout << "wrote " << manifest_path << '\n';

    obs::finishTimeseries();
    if (!profile_path.empty() && !obs::writeProfile(profile_path)) {
        std::cerr << "bench_search: failed to write " << profile_path
                  << '\n';
        return 2;
    }
    if (obs::flightRecorderEnabled()) {
        obs::dumpFlightRecorder("bench_search-exit");
    }

    if (!identical) {
        std::cerr << "bench_search: CHECKSUM MISMATCH across thread "
                     "counts - the search is not deterministic\n";
        return 1;
    }
    std::cout << "checksums identical across thread counts "
                 "(deterministic), eval cache " << cache_hits
              << " hit(s) / " << cache_misses << " miss(es)\n";
    return 0;
}
