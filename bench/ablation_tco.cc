/**
 * @file
 * Reproduces the §VII-A TCO analysis: GSF with the carbon model swapped
 * for a cost model. Prints per-core lifetime cost for every SKU and the
 * premium of the carbon-efficient GreenSKU over the cost-optimal SKU
 * (paper: "a cost-efficient server SKU is only 5% less costly").
 */
#include <algorithm>
#include <iostream>

#include "carbon/sku.h"
#include "common/table.h"
#include "gsf/tco.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::gsf;

    obs::metrics().reset();
    const TcoModel model;
    auto skus = carbon::StandardSkus::tableFourRows();

    // A cost-optimized candidate: GreenSKU-Full with the DDR5 fit cut to
    // 10 DIMMs (7 GB/core). Cheaper per core, but its memory:core ratio
    // falls below the workload-optimal 8 GB/core, so the carbon-driven
    // design process rejects it — this is the SKU the paper's
    // "cost-efficient server SKU" comparison is about.
    {
        carbon::ServerSku cheap = carbon::StandardSkus::greenFull();
        cheap.name = "Cost-Optimized (10x64 DDR5)";
        cheap.local_memory = MemCapacity::gb(10 * 64.0);
        for (auto &slot : cheap.slots) {
            if (slot.component.kind == carbon::ComponentKind::Dram &&
                !slot.component.reused) {
                slot.count = 10;
            }
        }
        cheap.validate();
        skus.push_back(cheap);
    }

    std::cout << "Sec. VII-A: TCO view of the SKU catalog (carbon model "
                 "swapped for a cost model)\n\n";

    Cost best = Cost::usd(1e18);
    std::string best_name;
    Table table({"SKU", "Server capex ($)", "Lifetime opex ($)",
                 "$/core (capex)", "$/core (opex)", "$/core total"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right});
    for (const auto &sku : skus) {
        const PerCoreCost cost = model.perCore(sku);
        if (cost.total() < best) {
            best = cost.total();
            best_name = sku.name;
        }
        table.addRow({sku.name,
                      Table::num(model.serverCapex(sku).asUsd(), 0),
                      Table::num(model.serverOpex(sku).asUsd(), 0),
                      Table::num(cost.capex.asUsd(), 1),
                      Table::num(cost.opex.asUsd(), 1),
                      Table::num(cost.total().asUsd(), 1)});
    }
    std::cout << table.render() << '\n';

    const Cost full =
        model.perCore(carbon::StandardSkus::greenFull()).total();
    std::cout << "Cost-optimal SKU: " << best_name << " at $"
              << Table::num(best.asUsd(), 1) << "/core; carbon-efficient "
                 "GreenSKU-Full at $" << Table::num(full.asUsd(), 1)
              << "/core -> premium "
              << Table::percent((full - best) / full, 1) << '\n';
    std::cout << "Paper anchor: the cost-efficient SKU is only ~5% less "
                 "costly than the carbon-efficient GreenSKU.\n";

    obs::RunManifest manifest("ablation_tco");
    manifest.config("skus", static_cast<std::int64_t>(skus.size()))
        .config("cost_optimal_sku", best_name)
        .config("cost_optimal_usd_per_core", best.asUsd())
        .config("green_full_usd_per_core", full.asUsd())
        .config("green_full_premium", (full - best) / full);
    if (!manifest.write("MANIFEST_ablation_tco.json")) {
        std::cerr << "ablation_tco: failed to write manifest\n";
        return 2;
    }
    return 0;
}
