/**
 * @file
 * Ablation: heterogeneous compute on GreenSKUs (§VIII). Compares
 * serving ML inference on baseline CPU cores, GreenSKU CPU cores, and a
 * GreenSKU host slice plus new/reused inference accelerators, across
 * carbon intensities — the "accelerator-reuse for less compute-
 * intensive ML models" study the paper proposes as future work.
 */
#include <iostream>

#include "common/table.h"
#include "gsf/hetero.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::gsf;

    obs::metrics().reset();
    const perf::PerfModel perf;
    const carbon::CarbonModel carbon;
    const HeteroAdoptionModel model(perf, carbon);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const auto &app = perf::AppCatalog::byName("Img-DNN");
    const std::vector<AcceleratorSpec> cards = {
        AcceleratorSpec::newInferenceCard(),
        AcceleratorSpec::reusedInferenceCard(),
    };

    std::cout << "Sec. VIII heterogeneous extension: carbon to serve one "
                 "baseline 8-core Img-DNN VM-equivalent\n\n";

    Table table({"CI (kg/kWh)", "Baseline CPU (kg)", "GreenSKU CPU (kg)",
                 "Host+new card (kg)", "Host+reused card (kg)",
                 "Winner"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Left});
    for (double ci : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
        const HeteroDecision d =
            model.decide(app, carbon::Generation::Gen3, baseline, green,
                         cards, CarbonIntensity::kgPerKwh(ci));
        table.addRow({Table::num(ci, 2),
                      Table::num(d.options[0].carbon.asKg(), 0),
                      Table::num(d.options[1].carbon.asKg(), 0),
                      Table::num(d.options[2].carbon.asKg(), 0),
                      Table::num(d.options[3].carbon.asKg(), 0),
                      d.chosen().label});
    }
    std::cout << table.render() << '\n';

    const HeteroDecision d =
        model.decide(app, carbon::Generation::Gen3, baseline, green,
                     cards, CarbonIntensity::kgPerKwh(0.1));
    std::cout << "At the average CI, offloading to "
              << d.chosen().label << " (" << d.chosen().accelerators
              << " card(s) + " << Table::num(d.chosen().green_cores, 0)
              << " host cores) cuts the workload's carbon by "
              << Table::percent(1.0 - d.chosen().carbon.asKg() /
                                          d.options[0].carbon.asKg(),
                                1)
              << " vs baseline CPUs — the accelerator-reuse opportunity "
                 "§VIII flags for a future GSF extension.\n";

    obs::RunManifest manifest("ablation_hetero");
    manifest.config("app", app.name)
        .config("accelerator_options",
                static_cast<std::int64_t>(cards.size()))
        .config("reference_ci_kg_per_kwh", 0.1)
        .config("chosen_at_reference", d.chosen().label)
        .config("chosen_carbon_kg", d.chosen().carbon.asKg());
    if (!manifest.write("MANIFEST_ablation_hetero.json")) {
        std::cerr << "ablation_hetero: failed to write manifest\n";
        return 2;
    }
    return 0;
}
