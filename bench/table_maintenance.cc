/**
 * @file
 * Reproduces the §V maintenance worked example: server AFRs from
 * component counts, Fail-In-Place repair-rate reduction, Little's-law
 * out-of-service fractions, and the C_OOS comparison showing
 * GreenSKU-Full's maintenance overhead is negligible.
 */
#include <iostream>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "reliability/maintenance.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::carbon;
    using namespace gsku::reliability;

    obs::metrics().reset();
    const MaintenanceModel model;
    const CarbonModel carbon;

    std::cout << "Sec. V maintenance component: AFRs, FIP, and C_OOS\n\n";

    Table table({"SKU", "DIMMs", "SSDs", "AFR (/100 srv/y)",
                 "Repair rate (FIP 75%)", "OOS fraction"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right});
    for (const ServerSku &sku : StandardSkus::tableFourRows()) {
        const MaintenanceStats s = model.stats(sku);
        table.addRow({sku.name,
                      std::to_string(sku.unitCount(ComponentKind::Dram)),
                      std::to_string(sku.unitCount(ComponentKind::Ssd)),
                      Table::num(s.server_afr, 1),
                      Table::num(s.repair_rate, 1),
                      Table::percent(s.oos_fraction, 2)});
    }
    std::cout << table.render() << '\n';

    // C_OOS per §V: repair rate x servers-per-baseline x per-server
    // emissions ratio. The 0.66 and 1.262 inputs are re-derived from the
    // carbon model rather than hard-coded.
    const ServerSku base = StandardSkus::baseline();
    const ServerSku full = StandardSkus::greenFull();
    const double emissions_ratio =
        (carbon.serverEmbodied(full) + carbon.serverOperational(full)) /
        (carbon.serverEmbodied(base) + carbon.serverOperational(base));
    // Average GreenSKU-Fulls per baseline: 80 baseline cores served by
    // 128-core servers at an average scaling factor ~1.06.
    const double servers_per_baseline = 80.0 * 1.06 / 128.0;

    std::cout << "C_OOS (baseline)      = "
              << Table::num(model.coos(base, {1.0, 1.0}), 2) << '\n';
    std::cout << "C_OOS (GreenSKU-Full) = "
              << Table::num(model.coos(full, {servers_per_baseline,
                                              emissions_ratio}),
                            2)
              << "  (servers/baseline "
              << Table::num(servers_per_baseline, 2)
              << ", per-server emissions ratio "
              << Table::num(emissions_ratio, 3) << ")\n\n";
    std::cout << "Paper anchors: AFR 4.8 -> 7.2; FIP repair rates 3.0 / "
                 "3.6; C_OOS 3 vs 2.98 (negligible overhead).\n";

    obs::RunManifest manifest("table_maintenance");
    manifest.config("servers_per_baseline", servers_per_baseline)
        .config("emissions_ratio", emissions_ratio)
        .config("coos_baseline", model.coos(base, {1.0, 1.0}))
        .config("coos_green_full",
                model.coos(full,
                           {servers_per_baseline, emissions_ratio}));
    if (!manifest.write("MANIFEST_table_maintenance.json")) {
        std::cerr << "table_maintenance: failed to write manifest\n";
        return 2;
    }
    return 0;
}
