/**
 * @file
 * Reproduces the §VI low-load latency analysis: each latency-reporting
 * application at 30% of peak, on GreenSKU-Efficient scaled by its
 * scaling factor, relative to the 8-core baselines. The paper reports
 * medians of -8.3% / -2% / +16% vs Gen1/2/3.
 */
#include <iostream>

#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "perf/cpu.h"
#include "perf/model.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::perf;

    obs::metrics().reset();
    const PerfModel model;
    const CpuSpec green = CpuCatalog::bergamo();
    const CpuSpec gens[] = {CpuCatalog::rome(), CpuCatalog::milan(),
                            CpuCatalog::genoa()};

    std::cout << "Sec. VI low-load latency: GreenSKU-Efficient (scaled) "
                 "vs 8-core baselines at 30% of peak\n\n";

    Table table({"Application", "vs Gen1", "vs Gen2", "vs Gen3"},
                {Align::Left, Align::Right, Align::Right, Align::Right});
    for (const auto &app : AppCatalog::all()) {
        if (app.throughput_only) {
            continue;
        }
        std::vector<std::string> cells = {app.name};
        for (const CpuSpec &base : gens) {
            const auto sf = model.scalingFactor(app, base);
            const int cores = sf.feasible ? sf.green_cores : 12;
            const double ratio =
                model.lowLoadLatencyMs(app, green, cores) /
                model.lowLoadLatencyMs(app, base, 8);
            cells.push_back(Table::percent(ratio - 1.0, 1));
        }
        table.addRow(cells);
    }
    std::cout << table.render() << '\n';

    std::cout << "Medians: vs Gen1 "
              << Table::percent(
                     model.medianLowLoadRatio(CpuCatalog::rome()) - 1.0, 1)
              << ", vs Gen2 "
              << Table::percent(
                     model.medianLowLoadRatio(CpuCatalog::milan()) - 1.0,
                     1)
              << ", vs Gen3 "
              << Table::percent(
                     model.medianLowLoadRatio(CpuCatalog::genoa()) - 1.0,
                     1)
              << '\n';
    std::cout << "Paper medians: -8.3% / -2% / +16%.\n";

    obs::RunManifest manifest("table_lowload_latency");
    manifest.config("load_fraction_of_peak", 0.3)
        .config("median_vs_gen3_ratio",
                model.medianLowLoadRatio(CpuCatalog::genoa()));
    if (!manifest.write("MANIFEST_table_lowload_latency.json")) {
        std::cerr << "table_lowload_latency: failed to write manifest\n";
        return 2;
    }
    return 0;
}
