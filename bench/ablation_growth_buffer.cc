/**
 * @file
 * Ablation: growth-buffer sizing and SKU-option fragmentation (§IV-D,
 * design goal D2). Validates the newsvendor sizing by Monte-Carlo and
 * quantifies how much extra buffer a provider pays for offering more
 * SKU options — the paper's argument for the single baseline-only
 * buffer workaround (§V).
 */
#include <iostream>

#include "carbon/model.h"
#include "cluster/demand.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::cluster;

    obs::metrics().reset();
    const GrowthBufferSizer sizer;
    const DemandParams &p = sizer.params();

    std::cout << "Growth-buffer sizing (demand " << p.mean_cores
              << " cores, " << p.lead_time_weeks
              << "-week lead time, service level "
              << Table::percent(p.service_level, 1) << ")\n\n";

    std::cout << "Analytic buffer: "
              << Table::num(sizer.bufferCores(), 0) << " cores ("
              << Table::percent(sizer.bufferFraction(), 1)
              << " of demand)\n";
    Rng rng(2024);
    std::cout << "Monte-Carlo shortfall probability with that buffer: "
              << Table::percent(sizer.simulateShortfallProbability(rng),
                                2)
              << "  (target "
              << Table::percent(1.0 - p.service_level, 2) << ")\n\n";

    std::cout << "D2: buffer growth when demand fragments across SKU "
                 "options\n\n";
    const carbon::CarbonModel carbon;
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const double kg_per_core =
        carbon.perCore(baseline).total().asKg();

    Table table({"SKU options", "Total buffer (cores)", "Penalty",
                 "Extra buffer emissions (tCO2e)"},
                {Align::Right, Align::Right, Align::Right, Align::Right});
    for (int options : {1, 2, 3, 4, 6, 8}) {
        const double cores = sizer.fragmentedBufferCores(options);
        const double extra = cores - sizer.bufferCores();
        table.addRow({std::to_string(options), Table::num(cores, 0),
                      Table::percent(sizer.fragmentationPenalty(options),
                                     1),
                      Table::num(extra * kg_per_core / 1000.0, 1)});
    }
    std::cout << table.render() << '\n';
    std::cout << "Reading: every further SKU option inflates safety "
                 "stock (~sqrt(k)); the paper's workaround — one "
                 "baseline-only buffer with GreenSKU fungibility — "
                 "avoids this at the cost of a slightly dirtier buffer "
                 "(counted by the evaluator).\n";

    obs::RunManifest manifest("ablation_growth_buffer");
    manifest.config("mean_cores", p.mean_cores)
        .config("lead_time_weeks", p.lead_time_weeks)
        .config("service_level", p.service_level)
        .config("buffer_cores", sizer.bufferCores())
        .config("buffer_fraction", sizer.bufferFraction())
        .seed("shortfall_mc", 2024);
    if (!manifest.write("MANIFEST_ablation_growth_buffer.json")) {
        std::cerr << "ablation_growth_buffer: failed to write manifest\n";
        return 2;
    }
    return 0;
}
