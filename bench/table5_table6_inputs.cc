/**
 * @file
 * Reproduces the input tables of Appendix A: Table V (component TDP and
 * embodied carbon) and Table VI (model parameters), plus the calibrated
 * values this reproduction adds for what the appendix omits — the full
 * provenance of every number feeding the carbon model.
 */
#include <iostream>

#include "carbon/catalog.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::carbon;

    obs::metrics().reset();
    std::cout << "Table V: component TDP and embodied carbon\n\n";
    Table five({"Component", "TDP (W)", "Embodied (kgCO2e)", "Source"},
               {Align::Left, Align::Right, Align::Right, Align::Left});
    auto row = [&](const Component &c, const std::string &tdp,
                   const std::string &emb, const char *source) {
        five.addRow({c.name, tdp, emb, source});
    };
    row(Catalog::bergamoCpu(), "400", "28.3", "Table V");
    row(Catalog::ddr5Dimm(1.0), "0.37 /GB", "1.65 /GB", "Table V");
    row(Catalog::paperDdr4Dimm(1.0), "0.37 /GB", "0 (reused)",
        "Table V (Sec. V example)");
    row(Catalog::reusedDdr4Dimm(1.0), "0.46 /GB", "0 (reused)",
        "calibrated (Table VIII op ordering)");
    row(Catalog::newSsd(1.0), "5.6 /TB", "17.3 /TB", "Table V");
    row(Catalog::reusedSsd(1.0), "8 /drive", "0 (reused)",
        "calibrated (Sec. VI)");
    row(Catalog::cxlController(), "5.8", "2.5",
        "Table V (underated: constant draw)");
    row(Catalog::genoaCpu(), "320", "30",
        "calibrated (Table I range; die area)");
    row(Catalog::milanCpu(), "280", "24", "Table I + estimate");
    row(Catalog::romeCpu(), "240", "22", "Table I + estimate");
    row(Catalog::serverMisc(), "30", "90", "best-effort estimate");
    std::cout << five.render() << '\n';

    const ModelParams p;
    std::cout << "Table VI: model parameters\n\n";
    Table six({"Parameter", "Value", "Source"},
              {Align::Left, Align::Right, Align::Left});
    six.addRow({"Carbon intensity",
                Table::num(p.carbon_intensity.asKgPerKwh(), 2) +
                    " kgCO2e/kWh",
                "Table VI"});
    six.addRow({"Lifetime",
                Table::num(p.lifetime.asYears(), 0) + " years (" +
                    Table::num(p.lifetime.asHours(), 0) + " h)",
                "Table VI"});
    six.addRow({"Derate factor @40% SPEC", Table::num(p.derate, 2),
                "Table VI"});
    six.addRow({"CPU VR loss", Table::num(p.cpu_vr_loss, 2),
                "Table VI"});
    six.addRow({"Rack space", std::to_string(p.rack_space_u) +
                                  "U (42U - 10U overhead)",
                "Table VI"});
    six.addRow({"Rack power capacity",
                Table::num(p.rack_power_capacity.asWatts() / 1000.0, 0) +
                    " kW",
                "Table VI"});
    six.addRow({"Rack misc power / embodied",
                Table::num(p.rack_misc_power.asWatts(), 0) + " W / " +
                    Table::num(p.rack_misc_embodied.asKg(), 0) + " kg",
                "Table V"});
    six.addRow({"DC embodied per rack",
                Table::num(p.dc_embodied_per_rack.asKg(), 0) + " kg",
                "calibrated (Table VIII)"});
    six.addRow({"PUE", Table::num(p.pue, 2), "estimate"});
    std::cout << six.render() << '\n';
    std::cout << "Calibrated entries are documented with their rationale "
                 "in src/carbon/catalog.h and DESIGN.md.\n";

    obs::RunManifest manifest("table5_table6_inputs");
    manifest
        .config("carbon_intensity_kg_per_kwh",
                p.carbon_intensity.asKgPerKwh())
        .config("lifetime_years", p.lifetime.asYears())
        .config("derate", p.derate)
        .config("pue", p.pue);
    if (!manifest.write("MANIFEST_table5_table6_inputs.json")) {
        std::cerr << "table5_table6_inputs: failed to write manifest\n";
        return 2;
    }
    return 0;
}
