/**
 * @file
 * One-shot reproduction report: every headline number of the paper's
 * evaluation from a single binary (the programmatic union of the other
 * benches, for quick regression checks).
 */
#include <iostream>

#include "gsf/report.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;

    obs::metrics().reset();
    const gsf::ReportOptions options;
    const gsf::ReproductionReport report = gsf::generateReport(options);
    std::cout << report.render();

    obs::RunManifest manifest("full_report");
    manifest.config("traces", static_cast<std::int64_t>(options.traces))
        .config("trace_concurrent_vms", options.trace_concurrent_vms)
        .config("ci_grid_points",
                static_cast<std::int64_t>(options.ci_grid.size()))
        .config("mean_cluster_savings", report.mean_cluster_savings)
        .config("dc_savings", report.dc_savings)
        .seed("trace_family_base", options.trace_seed);
    if (!manifest.write("MANIFEST_full_report.json")) {
        std::cerr << "full_report: failed to write manifest\n";
        return 2;
    }
    return 0;
}
