/**
 * @file
 * One-shot reproduction report: every headline number of the paper's
 * evaluation from a single binary (the programmatic union of the other
 * benches, for quick regression checks).
 */
#include <iostream>

#include "gsf/report.h"

int
main()
{
    std::cout << gsku::gsf::generateReport().render();
    return 0;
}
