/**
 * @file
 * Reproduces Fig. 7: p95 tail latency vs load (QPS) for one
 * representative application per latency-reporting class — Gen3 baseline
 * with 8 cores vs GreenSKU-Efficient scaled to the cores its scaling
 * factor requires (shown up to the minimum core count approaching Gen3's
 * peak). The dotted-SLO equivalent (Gen3 p95 at 90% of peak) is printed
 * per application.
 */
#include <iostream>

#include "common/chart.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "perf/cpu.h"
#include "perf/model.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::perf;

    obs::metrics().reset();
    const PerfModel model;
    const CpuSpec gen3 = CpuCatalog::genoa();
    const CpuSpec green = CpuCatalog::bergamo();

    // One representative per class, as in Fig. 7.
    const char *apps[] = {"Masstree", "Xapian", "Moses", "Img-DNN",
                          "Nginx"};

    std::cout << "Fig. 7: p95 tail latency vs load; Gen3 8-core baseline "
                 "vs GreenSKU-Efficient\n\n";

    for (const char *name : apps) {
        const AppProfile &app = AppCatalog::byName(name);
        const SloSpec slo = model.slo(app, gen3);
        const ScalingResult sf = model.scalingFactor(app, gen3);
        const int green_cores = sf.feasible ? sf.green_cores : 12;

        std::cout << "== " << name << " ==  SLO: p95 <= "
                  << Table::num(slo.p95_ms, 2) << " ms at "
                  << Table::num(slo.load_qps, 0) << " QPS; scaling factor "
                  << sf.display() << "\n";

        const LatencyCurve base = model.curve(app, gen3, 8, false, 12);
        const LatencyCurve mine =
            model.curve(app, green, green_cores, false, 12);

        Table table({"Load (QPS)", "Gen3 8c p95 (ms)",
                     "GreenSKU-Eff " + std::to_string(green_cores) +
                         "c p95 (ms)",
                     "SLO ok"},
                    {Align::Right, Align::Right, Align::Right,
                     Align::Left});
        for (std::size_t i = 0; i < base.points.size(); ++i) {
            const double qps = base.points[i].qps;
            const double green_p95 =
                model.p95LatencyMs(app, green, green_cores, qps);
            const bool ok =
                qps <= slo.load_qps
                    ? green_p95 <= slo.p95_ms * 1.02
                    : green_p95 <
                          1e9;    // Past SLO load: informational only.
            table.addRow(
                {Table::num(qps, 0), Table::num(base.points[i].p95_ms, 2),
                 std::isinf(green_p95) ? "saturated"
                                       : Table::num(green_p95, 2),
                 qps <= slo.load_qps ? (ok ? "yes" : "NO") : "-"});
        }
        std::cout << table.render();

        ChartSeries base_series;
        base_series.name = "Gen3 8c";
        base_series.glyph = 'o';
        ChartSeries green_series;
        green_series.name =
            "GreenSKU-Eff " + std::to_string(green_cores) + "c";
        green_series.glyph = '#';
        const double x_max = std::max(base.peak_qps, mine.peak_qps);
        for (int i = 1; i <= 40; ++i) {
            const double qps = 0.0247 * i * x_max;
            base_series.points.emplace_back(
                qps, model.p95LatencyMs(app, gen3, 8, qps));
            green_series.points.emplace_back(
                qps,
                model.p95LatencyMs(app, green, green_cores, qps));
        }
        ChartOptions opts;
        opts.x_label = "load (QPS)";
        opts.y_label = "p95 latency (ms), SLO = " +
                       Table::num(slo.p95_ms, 1) + " ms";
        opts.height = 12;
        std::cout << renderChart({base_series, green_series}, opts);
        std::cout << "  peak throughput: Gen3 8c = "
                  << Table::num(base.peak_qps, 0)
                  << " QPS, GreenSKU-Efficient " << green_cores
                  << "c = " << Table::num(mine.peak_qps, 0) << " QPS\n\n";
    }

    std::cout << "Paper anchors: Xapian/Moses/Nginx meet the SLO with "
                 "10-12 cores; Masstree cannot match Gen3 peak even at 12 "
                 "cores.\n";

    obs::RunManifest manifest("fig07_tail_latency");
    manifest
        .config("apps",
                static_cast<std::int64_t>(sizeof(apps) / sizeof(apps[0])))
        .config("baseline_cores", static_cast<std::int64_t>(8))
        .config("max_green_cores", static_cast<std::int64_t>(12));
    if (!manifest.write("MANIFEST_fig07_tail_latency.json")) {
        std::cerr << "fig07_tail_latency: failed to write manifest\n";
        return 2;
    }
    return 0;
}
