/**
 * @file
 * Ablation: server lifetime extension as a carbon strategy (§VII-B),
 * evaluated with maintenance aging and forgone generational efficiency
 * — the full-consequence analysis the paper says GSF enables.
 */
#include <iostream>

#include "common/table.h"
#include "gsf/lifetime.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::gsf;

    obs::metrics().reset();
    const LifetimeExtensionModel model{carbon::ModelParams{},
                                       reliability::AfrParams{}};
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();

    std::cout << "Lifetime-extension ablation (Gen3 baseline, per core "
                 "and service-year)\n\n";

    Table table({"Lifetime (y)", "AFR@age", "Embodied kg/core/y",
                 "Operational kg/core/y", "Maintenance kg/core/y",
                 "Total kg/core/y"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right});
    for (const auto &point : model.sweep(baseline, 4.0, 20.0, 2.0)) {
        table.addRow({Table::num(point.years, 0),
                      Table::num(point.afr, 1),
                      Table::num(point.embodied_per_core_year.asKg(), 2),
                      Table::num(point.operational_per_core_year.asKg(),
                                 2),
                      Table::num(point.maintenance_per_core_year.asKg(),
                                 3),
                      Table::num(point.total().asKg(), 2)});
    }
    std::cout << table.render() << '\n';

    const double optimal = model.optimalLifetimeYears(baseline);
    const auto at6 = model.evaluate(baseline, 6.0);
    const auto at13 = model.evaluate(baseline, 13.0);
    const auto best = model.evaluate(baseline, optimal);

    std::cout << "Carbon-optimal lifetime: " << Table::num(optimal, 1)
              << " years ("
              << Table::percent(
                     1.0 - best.total().asKg() / at6.total().asKg(), 1)
              << " below the 6-year policy)\n";
    std::cout
        << "The naive Sec. VII-B equivalence (embodied amortization "
           "only, see ablation_alternatives) makes 13 years look worth "
           "GreenSKU-Full's 26% per-core savings; counting forgone "
           "generational efficiency and maintenance aging, 13 years "
           "actually nets only "
        << Table::percent(
               1.0 - at13.total().asKg() / at6.total().asKg(), 1)
        << " — the paper's point that lifetime extension is a poor "
           "substitute for GreenSKU design.\n";

    obs::RunManifest manifest("ablation_lifetime");
    manifest.config("sweep_from_years", 4.0)
        .config("sweep_to_years", 20.0)
        .config("sweep_step_years", 2.0)
        .config("optimal_lifetime_years", optimal)
        .config("net_savings_at_13y",
                1.0 - at13.total().asKg() / at6.total().asKg());
    if (!manifest.write("MANIFEST_ablation_lifetime.json")) {
        std::cerr << "ablation_lifetime: failed to write manifest\n";
        return 2;
    }
    return 0;
}
