/**
 * @file
 * Ablation: second-generation GreenSKU candidates (§III) — NIC reuse
 * and low-power DRAM. The paper's claim under test: these "may be
 * feasible, but yield low returns today" and only make sense for the
 * residual emissions of a second-generation design.
 */
#include <iostream>

#include "carbon/catalog.h"
#include "carbon/model.h"
#include "carbon/sku.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace {

using namespace gsku;
using namespace gsku::carbon;

ServerSku
withExplicitNic(ServerSku sku, bool reused)
{
    sku.name += reused ? " + reused NIC" : "";
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Misc) {
            slot = {Catalog::serverMiscNoNic(), 1};
        }
    }
    sku.slots.push_back({reused ? Catalog::reusedNic() : Catalog::nic(), 1});
    sku.validate();
    return sku;
}

ServerSku
withLpddr(ServerSku sku)
{
    sku.name += " + LPDDR";
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Dram &&
            !slot.component.reused) {
            const double gb = slot.component.tdp.asWatts() / 0.37;
            slot.component = Catalog::lpddrDimm(gb);
        }
    }
    sku.validate();
    return sku;
}

} // namespace

int
main()
{
    obs::metrics().reset();
    const CarbonModel model;
    const ServerSku baseline = StandardSkus::baseline();

    std::cout << "Second-generation GreenSKU candidates (Sec. III): "
                 "per-core savings vs the Gen3 baseline\n\n";

    const ServerSku full_nic = withExplicitNic(StandardSkus::greenFull(),
                                               false);
    const std::vector<ServerSku> skus = {
        full_nic,
        withExplicitNic(StandardSkus::greenFull(), true),
        withLpddr(withExplicitNic(StandardSkus::greenFull(), false)),
        withLpddr(withExplicitNic(StandardSkus::greenFull(), true)),
    };

    Table table({"Configuration", "Op save", "Emb save", "Total save",
                 "Delta vs GreenSKU-Full"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right});
    const double full_total =
        model.savingsVs(baseline, full_nic).total_savings;
    for (const auto &sku : skus) {
        const SavingsRow row = model.savingsVs(baseline, sku);
        table.addRow({sku.name,
                      Table::percent(row.operational_savings, 1),
                      Table::percent(row.embodied_savings, 1),
                      Table::percent(row.total_savings, 1),
                      Table::num((row.total_savings - full_total) * 100.0,
                                 2) + " pp"});
    }
    std::cout << table.render() << '\n';
    std::cout << "Reading: each second-generation option moves total "
                 "savings by roughly 0.3-2 pp at today's carbon intensity — "
                 "the paper's \"low returns today\", kept on the menu "
                 "for residual-emission hunting.\n";

    obs::RunManifest manifest("ablation_second_gen");
    manifest
        .config("candidates", static_cast<std::int64_t>(skus.size()))
        .config("full_nic_total_savings", full_total);
    if (!manifest.write("MANIFEST_ablation_second_gen.json")) {
        std::cerr << "ablation_second_gen: failed to write manifest\n";
        return 2;
    }
    return 0;
}
