/**
 * @file
 * Ablation: how many GreenSKU types to deploy (design goal D2). Sweeps
 * portfolio sizes over the three GreenSKU designs, counting both the
 * demand-matching gains and the buffer-fragmentation cost — the
 * quantitative version of the paper's "cloud providers must limit how
 * many SKU types they deploy".
 */
#include <iostream>

#include "common/table.h"
#include "gsf/portfolio.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::gsf;

    obs::metrics().reset();
    const PortfolioAnalysis analysis{carbon::ModelParams{},
                                     cluster::DemandParams{}, 50000.0};
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(0.1);

    // Menu ordered by per-core savings at the average CI; 75% of demand
    // is adoptable (the rest stays on baselines), mean scaling 1.07.
    const std::vector<PortfolioSlice> menu = {
        {carbon::StandardSkus::greenFull(), 0.25, 1.07},
        {carbon::StandardSkus::greenCxl(), 0.25, 1.07},
        {carbon::StandardSkus::greenEfficient(), 0.25, 1.07},
    };

    std::cout << "D2 portfolio sweep: 50k-core demand, 75% adoptable, "
                 "CI = 0.1 kg/kWh\n\n";

    Table table({"Portfolio", "SKU types", "Demand (tCO2e)",
                 "Buffers (tCO2e)", "Total (tCO2e)", "Savings"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right});
    for (const PortfolioResult &r :
         analysis.sweepPortfolioSizes(baseline, menu, ci)) {
        table.addRow({r.label, std::to_string(r.sku_types),
                      Table::num(r.demand_emissions.asTonnes(), 0),
                      Table::num(r.buffer_emissions.asTonnes(), 0),
                      Table::num(r.total().asTonnes(), 0),
                      Table::percent(r.savings, 2)});
    }
    std::cout << table.render() << '\n';
    std::cout << "Reading: the first GreenSKU type buys nearly all the "
                 "savings; every further type re-fragments demand "
                 "(sqrt(k) safety stock) for little additional matching "
                 "gain — deploy one well-chosen GreenSKU per region, as "
                 "the paper's region analysis (Fig. 11) suggests.\n";

    obs::RunManifest manifest("ablation_portfolio");
    manifest.config("demand_cores", 50000.0)
        .config("ci_kg_per_kwh", ci.asKgPerKwh())
        .config("menu_skus", static_cast<std::int64_t>(menu.size()))
        .config("adoptable_fraction_per_slice", 0.25)
        .config("mean_scaling", 1.07);
    if (!manifest.write("MANIFEST_ablation_portfolio.json")) {
        std::cerr << "ablation_portfolio: failed to write manifest\n";
        return 2;
    }
    return 0;
}
