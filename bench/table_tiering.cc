/**
 * @file
 * Reproduces the §III memory-tiering claims: per-application CXL
 * backing decisions under the Pond-style policy, and the headline "98%
 * of applications incur <5% slowdown with CXL".
 */
#include <iostream>

#include "common/table.h"
#include "gsf/tiering.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::gsf;

    obs::metrics().reset();
    const MemoryTieringPolicy policy;
    const carbon::ServerSku sku = carbon::StandardSkus::greenCxl();

    std::cout << "Sec. III memory tiering on GreenSKU-CXL ("
              << Table::percent(sku.cxlMemoryFraction())
              << " of memory is reused DDR4 via CXL)\n\n";

    Table table({"Application", "cxl_sens", "Mode @55% touched",
                 "Slowdown @55%", "Slowdown @90%"},
                {Align::Left, Align::Right, Align::Left, Align::Right,
                 Align::Right});
    for (const auto &app : perf::AppCatalog::all()) {
        const auto mid = policy.decide(app, 0.55, sku);
        const auto high = policy.decide(app, 0.90, sku);
        table.addRow({app.name, Table::num(app.cxl_sens, 2),
                      mid.fully_cxl ? "fully CXL" : "tiered",
                      Table::num(mid.slowdown, 3),
                      Table::num(high.slowdown, 3)});
    }
    std::cout << table.render() << '\n';

    std::cout << "Fleet core-hour share with <5% slowdown: "
              << Table::percent(policy.fleetShareBelowSlowdown(sku), 1)
              << "  (paper: 98%)\n";
    std::cout << "Share that can run entirely from CXL: "
              << Table::percent(
                     perf::AppCatalog::cxlTolerantCoreHourShare(), 1)
              << "  (paper: 20.2%)\n";

    TieringConfig no_pred;
    no_pred.untouched_claim_fraction = 0.0;
    std::cout << "Without the untouched-memory predictor the <5% share "
                 "drops to "
              << Table::percent(MemoryTieringPolicy(no_pred)
                                    .fleetShareBelowSlowdown(sku),
                                1)
              << " — the Pond mechanism is what makes DRAM reuse "
                 "adoption-neutral.\n";

    obs::RunManifest manifest("table_tiering");
    manifest.config("cxl_memory_fraction", sku.cxlMemoryFraction())
        .config("fleet_share_below_slowdown",
                policy.fleetShareBelowSlowdown(sku))
        .config("cxl_tolerant_core_hour_share",
                perf::AppCatalog::cxlTolerantCoreHourShare());
    if (!manifest.write("MANIFEST_table_tiering.json")) {
        std::cerr << "table_tiering: failed to write manifest\n";
        return 2;
    }
    return 0;
}
