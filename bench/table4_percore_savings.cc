/**
 * @file
 * Reproduces Table IV / Table VIII: per-core operational, embodied, and
 * total carbon savings (at the average Azure carbon intensity) of the
 * four incremental GreenSKU configurations relative to the Gen3
 * baseline, from open-source component data.
 */
#include <iostream>
#include <sstream>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace {

std::string
dimmsText(const gsku::carbon::ServerSku &sku)
{
    std::ostringstream out;
    bool first = true;
    for (const auto &slot : sku.slots) {
        if (slot.component.kind != gsku::carbon::ComponentKind::Dram) {
            continue;
        }
        if (!first) {
            out << " + ";
        }
        first = false;
        const double gb =
            slot.component.tdp.asWatts() /
            (slot.component.reused ? 0.46 : 0.37);
        out << slot.count << "x" << static_cast<int>(gb + 0.5)
            << (slot.component.reused ? " CXL" : "");
    }
    return out.str();
}

} // namespace

int
main()
{
    using namespace gsku;
    using namespace gsku::carbon;

    obs::metrics().reset();
    const CarbonModel model;
    const auto rows = model.savingsTable(StandardSkus::tableFourRows());
    const auto skus = StandardSkus::tableFourRows();

    std::cout << "Table VIII: per-core savings vs the Gen3 baseline "
                 "(open-source data, CI = 0.1 kgCO2e/kWh)\n\n";

    Table table({"SKU Config.", "Cores", "DIMMs (GB)", "SSD (TB)",
                 "Op kg/core", "Emb kg/core", "Op save", "Emb save",
                 "Total save"},
                {Align::Left, Align::Right, Align::Left, Align::Right,
                 Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Right});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        const auto &sku = skus[i];
        table.addRow(
            {r.sku_name, std::to_string(sku.cores), dimmsText(sku),
             Table::num(sku.storage.asTb(), 0),
             Table::num(r.per_core.operational.asKg(), 1),
             Table::num(r.per_core.embodied.asKg(), 1),
             i == 0 ? "-" : Table::percent(r.operational_savings),
             i == 0 ? "-" : Table::percent(r.embodied_savings),
             i == 0 ? "-" : Table::percent(r.total_savings)});
    }
    std::cout << table.render() << '\n';
    std::cout << "Paper Table VIII (open data): Resized 6/10/8, Efficient "
                 "16/14/15, CXL 15/32/24, Full 14/38/26 (%).\n";
    std::cout << "Paper Table IV (internal data): Resized 3/6/4, "
                 "Efficient 29/14/23, CXL 23/25/24, Full 17/43/28 (%).\n";

    obs::RunManifest manifest("table4_percore_savings");
    manifest.config("skus", static_cast<std::int64_t>(rows.size()))
        .config("ci_kg_per_kwh", 0.1)
        .config("green_full_total_savings", rows.back().total_savings);
    if (!manifest.write("MANIFEST_table4_percore_savings.json")) {
        std::cerr << "table4_percore_savings: failed to write manifest\n";
        return 2;
    }
    return 0;
}
