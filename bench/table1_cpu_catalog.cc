/**
 * @file
 * Reproduces Table I: baseline AMD CPUs vs the efficient Bergamo CPU,
 * extended with the derived per-core attributes the performance model
 * uses (§III bandwidth-per-core figures).
 */
#include <iostream>

#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "perf/cpu.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::perf;

    obs::metrics().reset();
    std::cout << "Table I: comparing baseline AMD CPUs to the efficient "
                 "Bergamo CPU\n\n";

    Table table({"CPU Characteristic", "Bergamo", "Rome (Gen1)",
                 "Milan (Gen2)", "Genoa (Gen3)"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right});

    const CpuSpec cpus[] = {CpuCatalog::bergamo(), CpuCatalog::rome(),
                            CpuCatalog::milan(), CpuCatalog::genoa()};

    auto row = [&](const std::string &label, auto getter, int precision) {
        std::vector<std::string> cells = {label};
        for (const CpuSpec &cpu : cpus) {
            cells.push_back(Table::num(getter(cpu), precision));
        }
        table.addRow(cells);
    };

    row("Cores per socket",
        [](const CpuSpec &c) { return double(c.cores_per_socket); }, 0);
    row("Max core freq. (GHz)",
        [](const CpuSpec &c) { return c.max_freq_ghz; }, 1);
    row("LLC size per socket (MiB)",
        [](const CpuSpec &c) { return c.llc_mib; }, 0);
    row("TDP (W)", [](const CpuSpec &c) { return c.tdp.asWatts(); }, 0);
    row("LLC per core (MiB)",
        [](const CpuSpec &c) { return c.llcPerCoreMib(); }, 1);
    row("Mem BW per core (GB/s)",
        [](const CpuSpec &c) { return c.bwPerCoreGbps(); }, 2);

    std::cout << table.render() << '\n';
    std::cout << "Paper anchor (Sec. III): Genoa offers 5.8 GB/s per core; "
                 "Bergamo (460+100)/128 = 4.4 GB/s per core.\n";

    obs::RunManifest manifest("table1_cpu_catalog");
    manifest.config("cpus", static_cast<std::int64_t>(4))
        .config("bergamo_bw_per_core_gbps",
                CpuCatalog::bergamo().bwPerCoreGbps())
        .config("genoa_bw_per_core_gbps",
                CpuCatalog::genoa().bwPerCoreGbps());
    if (!manifest.write("MANIFEST_table1_cpu_catalog.json")) {
        std::cerr << "table1_cpu_catalog: failed to write manifest\n";
        return 2;
    }
    return 0;
}
