/**
 * @file
 * Timed benchmark of the parallel GSF evaluation engine. Runs the same
 * Fig. 11-style intensity sweep at 1, 2, and 8 pool threads (via
 * ThreadPool::resetGlobal), checksums every per-CI mean-savings value,
 * and writes BENCH_sweep.json with wall times, speedups, and the
 * checksums. Exits nonzero if any thread count produces a different
 * checksum: the determinism contract of common/parallel.h is that
 * parallel and serial runs are byte-identical.
 *
 * Speedups are only meaningful up to the machine's core count
 * (hardware_concurrency is recorded in the JSON so CI can judge); the
 * checksum equality check is meaningful everywhere.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "carbon/catalog.h"
#include "cluster/trace_gen.h"
#include "common/parallel.h"
#include "common/table.h"
#include "gsf/eval_cache.h"
#include "gsf/evaluator.h"
#include "obs/flightrec.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"

int
main(int argc, char **argv)
{
    using namespace gsku;
    using namespace gsku::gsf;

    // Per-run metrics isolation: the manifest written at the end
    // carries only this run's counts.
    obs::metrics().reset();

    // Live telemetry (see obs/timeseries.h): sampling ticks come from
    // the engines themselves (sweep jobs, sizing probes, replay
    // events); here we only activate the sink and finalize it. Also
    // reachable via GSKU_TSDB without any flag.
    obs::flightRecordProgram("bench_sweep");
    obs::setProfileProgram("bench_sweep");
    std::string profile_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tsdb" && i + 1 < argc) {
            obs::startTimeseries(argv[++i]);
        } else if (arg == "--profile" && i + 1 < argc) {
            // Deterministic work-unit profile (obs/profile.h): the
            // legs pin their own thread counts, so the artifact is
            // byte-identical whatever GSKU_THREADS says.
            profile_path = argv[++i];
            obs::startProfile();
        } else {
            std::cerr << "bench_sweep: unknown option '" << arg
                      << "'\nusage: bench_sweep [--tsdb <path>] "
                         "[--profile <path>]\n";
            return 2;
        }
    }

    // A scaled-down fig11 configuration: enough distinct (trace,
    // adoption-table) sizing jobs to exercise the pool, small enough
    // that the 1-thread leg stays well inside the smoke-test budget.
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 300.0;
    params.duration_h = 24.0 * 7.0;
    const std::uint64_t trace_seed = 7;
    const auto traces = cluster::TraceGenerator(params).generateFamily(
        8, /*base_seed=*/trace_seed);

    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const std::vector<double> grid = {0.05, 0.1, 0.15, 0.2, 0.3, 0.4};

    const int hw = ThreadPool::defaultThreads();
    const std::vector<int> thread_counts = {1, 2, 8};

    std::cout << "bench_sweep: " << traces.size() << " traces x "
              << grid.size() << " CIs, hardware threads " << hw << "\n\n";

    struct Leg
    {
        int threads = 0;
        double seconds = 0.0;
        std::string checksum;
        std::int64_t max_rss_kb = 0;
    };
    std::vector<Leg> legs;

    for (int threads : thread_counts) {
        ThreadPool::resetGlobal(threads);
        const GsfEvaluator evaluator{GsfEvaluator::Options{}};

        const bench::WallTimer timer;
        const IntensitySweep sweep =
            evaluator.sweep(traces, baseline, green, grid);
        const double seconds = timer.seconds();

        bench::Checksum sum;
        sum.add(sweep.intensities);
        sum.add(sweep.mean_savings);
        legs.push_back({threads, seconds, sum.hex(),
                        bench::maxRssKb()});
        // Leg boundary: a serial tick flushes the sampler so each
        // thread-count leg's tail lands in the tsdb file.
        obs::telemetryTick();
    }
    ThreadPool::resetGlobal(ThreadPool::defaultThreads());

    bool identical = true;
    for (const Leg &leg : legs) {
        identical = identical && leg.checksum == legs.front().checksum;
    }

    Table table({"Threads", "Wall (s)", "Speedup", "Max RSS (MB)",
                 "Checksum"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Left});
    std::vector<bench::JsonObject> json_legs;
    for (const Leg &leg : legs) {
        const double speedup =
            leg.seconds > 0.0 ? legs.front().seconds / leg.seconds : 0.0;
        table.addRow({std::to_string(leg.threads),
                      Table::num(leg.seconds, 3), Table::num(speedup, 2),
                      Table::num(static_cast<double>(leg.max_rss_kb) /
                                     1024.0,
                                 1),
                      leg.checksum});
        bench::JsonObject j;
        j.field("threads", leg.threads)
            .field("seconds", leg.seconds)
            .field("speedup", speedup)
            .field("max_rss_kb", leg.max_rss_kb)
            .field("checksum", leg.checksum);
        json_legs.push_back(j);
    }
    std::cout << table.render() << '\n';

    bench::JsonObject doc;
    doc.field("benchmark", std::string("gsf_intensity_sweep"))
        .field("traces", static_cast<int>(traces.size()))
        .field("intensities", static_cast<int>(grid.size()))
        .field("hardware_concurrency", hw)
        .field("checksums_identical", identical)
        .array("legs", json_legs);
    const std::string path = "BENCH_sweep.json";
    if (!doc.writeFile(path)) {
        std::cerr << "bench_sweep: failed to write " << path << '\n';
        return 2;
    }
    std::cout << "wrote " << path << '\n';

    obs::RunManifest manifest("bench_sweep");
    manifest.config("traces", static_cast<std::int64_t>(traces.size()))
        .config("intensities", static_cast<std::int64_t>(grid.size()))
        .config("target_concurrent_vms", params.target_concurrent_vms)
        .config("duration_h", params.duration_h)
        .config("thread_counts", std::string("1,2,8"))
        .config("checksums_identical", identical)
        // Record whether the persistent eval cache served this run (a
        // path-free bool: manifests must stay machine-independent).
        // The evalcache.* counters in the metrics snapshot say how.
        .config("eval_cache_enabled", evalCache() != nullptr)
        .seed("trace_family_base", trace_seed);
    const std::string manifest_path = "MANIFEST_bench_sweep.json";
    if (!manifest.write(manifest_path)) {
        std::cerr << "bench_sweep: failed to write " << manifest_path
                  << '\n';
        return 2;
    }
    std::cout << "wrote " << manifest_path << '\n';

    obs::finishTimeseries();
    if (!profile_path.empty() && !obs::writeProfile(profile_path)) {
        std::cerr << "bench_sweep: failed to write " << profile_path
                  << '\n';
        return 2;
    }
    if (obs::flightRecorderEnabled()) {
        obs::dumpFlightRecorder("bench_sweep-exit");
    }

    if (!identical) {
        std::cerr << "bench_sweep: CHECKSUM MISMATCH across thread "
                     "counts - parallel run is not deterministic\n";
        return 1;
    }
    std::cout << "checksums identical across thread counts "
                 "(deterministic)\n";
    return 0;
}
