/**
 * @file
 * Reproduces Fig. 9: CDF across production-like traces of the mean
 * core (solid) and memory (dashed) packing density, for the right-sized
 * all-baseline cluster and for the GreenSKU-Fulls in the final mixed
 * cluster. 35 synthetic traces substitute for Azure's 35 production
 * traces (DESIGN.md §1).
 */
#include <iostream>
#include <vector>

#include "cluster/trace_gen.h"
#include "common/chart.h"
#include "common/stats.h"
#include "common/table.h"
#include "gsf/adoption.h"
#include "gsf/sizing.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::cluster;
    using namespace gsku::gsf;

    obs::metrics().reset();
    TraceGenParams params;
    params.target_concurrent_vms = 250.0;
    params.duration_h = 24.0 * 14.0;
    const TraceGenerator gen(params);
    const auto traces = gen.generateFamily(35, /*base_seed=*/2024);

    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const perf::PerfModel perf;
    const carbon::CarbonModel carbon;
    const AdoptionModel adoption(perf, carbon);
    const auto table = adoption.buildTable(baseline, green,
                                           CarbonIntensity::kgPerKwh(0.1));
    const ClusterSizer sizer;

    std::vector<double> base_core;
    std::vector<double> base_mem;
    std::vector<double> green_core;
    std::vector<double> green_mem;
    for (const auto &trace : traces) {
        const SizingResult r = sizer.size(trace, baseline, green, table);
        base_core.push_back(
            r.baseline_only_replay.baseline.mean_core_packing);
        base_mem.push_back(
            r.baseline_only_replay.baseline.mean_mem_packing);
        green_core.push_back(r.mixed_replay.green.mean_core_packing);
        green_mem.push_back(r.mixed_replay.green.mean_mem_packing);
    }

    std::cout << "Fig. 9: CDF of mean packing density across "
              << traces.size() << " traces\n\n";

    const EmpiricalCdf cdf_bc(base_core);
    const EmpiricalCdf cdf_bm(base_mem);
    const EmpiricalCdf cdf_gc(green_core);
    const EmpiricalCdf cdf_gm(green_mem);

    Table out({"CDF", "Baseline core", "Baseline mem", "GreenSKU core",
               "GreenSKU mem"},
              {Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right});
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        out.addRow({Table::percent(q), Table::num(cdf_bc.quantile(q), 3),
                    Table::num(cdf_bm.quantile(q), 3),
                    Table::num(cdf_gc.quantile(q), 3),
                    Table::num(cdf_gm.quantile(q), 3)});
    }
    std::cout << out.render() << '\n';

    auto cdf_series = [](const char *name, char glyph,
                         const EmpiricalCdf &cdf) {
        ChartSeries s;
        s.name = name;
        s.glyph = glyph;
        for (const auto &[value, fraction] : cdf.curve()) {
            s.points.emplace_back(value, fraction);
        }
        return s;
    };
    ChartOptions opts;
    opts.x_label = "mean packing density";
    opts.y_label = "CDF across traces";
    opts.height = 12;
    std::cout << renderChart(
                     {cdf_series("baseline core", 'b', cdf_bc),
                      cdf_series("green core", 'g', cdf_gc),
                      cdf_series("baseline mem", 'm', cdf_bm),
                      cdf_series("green mem", 'w', cdf_gm)},
                     opts)
              << '\n';

    auto mean = [](const std::vector<double> &xs) {
        OnlineStats s;
        for (double x : xs) {
            s.add(x);
        }
        return s.mean();
    };
    std::cout << "Means: baseline core "
              << Table::num(mean(base_core), 3) << ", mem "
              << Table::num(mean(base_mem), 3) << " | GreenSKU-Full core "
              << Table::num(mean(green_core), 3) << ", mem "
              << Table::num(mean(green_mem), 3) << "\n\n";
    std::cout << "Paper anchor: the GreenSKU-Full trades better memory "
                 "packing density for worse core packing density (memory:"
                 "core 8 vs the baseline's 9.6).\n";

    obs::RunManifest manifest("fig09_packing_density");
    manifest.config("traces", static_cast<std::int64_t>(traces.size()))
        .config("target_concurrent_vms", params.target_concurrent_vms)
        .config("duration_h", params.duration_h)
        .config("mean_baseline_core_packing", mean(base_core))
        .config("mean_green_core_packing", mean(green_core))
        .seed("trace_family_base", 2024);
    if (!manifest.write("MANIFEST_fig09_packing_density.json")) {
        std::cerr << "fig09_packing_density: failed to write manifest\n";
        return 2;
    }
    return 0;
}
