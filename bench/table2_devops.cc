/**
 * @file
 * Reproduces Table II: GreenSKU-Efficient's (and GreenSKU-CXL's)
 * normalized slowdown compiling three DevOps programs, relative to the
 * Gen3 baseline at equal core count.
 */
#include <iostream>

#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "perf/cpu.h"
#include "perf/model.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::perf;

    obs::metrics().reset();
    const PerfModel model;

    std::cout << "Table II: DevOps build slowdown normalized to Gen3 "
                 "(8 cores each)\n\n";

    Table table({"DevOps App.", "Gen1", "Gen2", "Gen3",
                 "GreenSKU-Efficient", "GreenSKU-CXL"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right});

    for (const char *name : {"Build-PHP", "Build-Python", "Build-Wasm"}) {
        const AppProfile &app = AppCatalog::byName(name);
        table.addRow(
            {name,
             Table::num(model.buildSlowdown(app, CpuCatalog::rome()), 2),
             Table::num(model.buildSlowdown(app, CpuCatalog::milan()), 2),
             Table::num(model.buildSlowdown(app, CpuCatalog::genoa()), 2),
             Table::num(model.buildSlowdown(app, CpuCatalog::bergamo()),
                        2),
             Table::num(
                 model.buildSlowdown(app, CpuCatalog::bergamo(), true),
                 2)});
    }
    std::cout << table.render() << '\n';
    std::cout << "Paper values: PHP 1.27/1.11/1.00/1.17/1.38, Python "
                 "1.28/1.13/1.00/1.15/1.21, Wasm 1.34/1.19/1.00/1.15/"
                 "1.28.\n";

    obs::RunManifest manifest("table2_devops");
    manifest.config("apps", static_cast<std::int64_t>(3))
        .config("cores_per_build", static_cast<std::int64_t>(8));
    if (!manifest.write("MANIFEST_table2_devops.json")) {
        std::cerr << "table2_devops: failed to write manifest\n";
        return 2;
    }
    return 0;
}
