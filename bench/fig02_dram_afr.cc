/**
 * @file
 * Reproduces Fig. 2: moving average (and raw) normalized DDR4 DIMM
 * failure rates vs deployment time over a 7-year horizon. Rates are
 * normalized to the steady-state AFR, as in the paper's "normalized
 * failure rates". The expected shape: an initial period of higher AFRs,
 * then a flat rate for the remaining years — the case for DRAM reuse.
 */
#include <iostream>

#include "common/chart.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "reliability/failure_sim.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::reliability;

    obs::metrics().reset();
    HazardParams hazard;
    hazard.base_afr = 0.012;            // ~1.2% AFR class of parts.
    hazard.infant_multiplier = 2.0;
    hazard.infant_decay_months = 6.0;

    FleetFailureSimulator sim(hazard, 500000, /*seed=*/2024);
    const auto stats = sim.run(/*months=*/84, /*smoothing_window=*/6);

    std::cout << "Fig. 2: normalized DDR4 failure rates vs deployment "
                 "time (500k-DIMM fleet)\n\n";

    Table table({"Month", "Population", "Failures", "Raw (norm.)",
                 "Moving avg (norm.)"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Right});
    for (const auto &s : stats) {
        if (s.month % 3 != 0) {
            continue;               // Quarterly rows keep output short.
        }
        table.addRow({std::to_string(s.month), std::to_string(s.population),
                      std::to_string(s.failures),
                      Table::num(s.raw_rate / hazard.base_afr, 2),
                      Table::num(s.smoothed_rate / hazard.base_afr, 2)});
    }
    std::cout << table.render() << '\n';

    // Render the figure: raw (gray in the paper) and moving average.
    ChartSeries raw;
    raw.name = "raw (normalized)";
    raw.glyph = '.';
    ChartSeries avg;
    avg.name = "moving average";
    avg.glyph = '*';
    for (const auto &s : stats) {
        raw.points.emplace_back(s.month, s.raw_rate / hazard.base_afr);
        avg.points.emplace_back(s.month,
                                s.smoothed_rate / hazard.base_afr);
    }
    ChartOptions opts;
    opts.x_label = "deployment month";
    opts.y_label = "normalized failure rate";
    std::cout << renderChart({raw, avg}, opts) << '\n';

    // Flatness statistic: mean smoothed rate in years 2-4 vs years 5-7.
    auto mean_rate = [&](int from, int to) {
        double sum = 0.0;
        int n = 0;
        for (const auto &s : stats) {
            if (s.month >= from && s.month < to) {
                sum += s.smoothed_rate;
                ++n;
            }
        }
        return sum / n;
    };
    const double mid = mean_rate(24, 48);
    const double late = mean_rate(60, 84);
    std::cout << "Flatness: mean AFR years 2-4 = "
              << Table::num(mid * 100, 2) << "%/y, years 5-7 = "
              << Table::num(late * 100, 2)
              << "%/y (ratio " << Table::num(late / mid, 3) << ")\n";
    std::cout << "Paper anchor: after an initial period of higher AFRs, "
                 "rates stay constant over 7 years.\n";

    obs::RunManifest manifest("fig02_dram_afr");
    manifest.config("base_afr", hazard.base_afr)
        .config("infant_multiplier", hazard.infant_multiplier)
        .config("infant_decay_months", hazard.infant_decay_months)
        .config("fleet_size", static_cast<std::int64_t>(500000))
        .config("months", static_cast<std::int64_t>(84))
        .config("flatness_ratio", late / mid)
        .seed("fleet_sim", 2024);
    if (!manifest.write("MANIFEST_fig02_dram_afr.json")) {
        std::cerr << "fig02_dram_afr: failed to write manifest\n";
        return 2;
    }
    return 0;
}
