/**
 * @file
 * Ablation for design goal D1 (§II): the operational-vs-embodied
 * tradeoff of each low-carbon component decision, isolated. Starting
 * from GreenSKU-Efficient, toggles DDR4-via-CXL reuse and SSD reuse
 * independently, and sweeps the memory:core ratio around the
 * carbon-optimal 8 GB/core of Baseline-Resized.
 */
#include <iostream>

#include "carbon/catalog.h"
#include "carbon/model.h"
#include "carbon/sku.h"
#include "common/table.h"

namespace {

using namespace gsku;
using namespace gsku::carbon;

/** GreenSKU-Efficient with only SSD reuse (no CXL memory). */
ServerSku
efficientWithReusedSsd()
{
    ServerSku sku = StandardSkus::greenEfficient();
    sku.name = "Efficient + reused SSDs";
    sku.storage = StorageCapacity::tb(2 * 4.0 + 12 * 1.0);
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Ssd) {
            slot = {Catalog::newSsd(4.0), 2};
        }
    }
    sku.slots.push_back({Catalog::reusedSsd(1.0), 12});
    sku.validate();
    return sku;
}

/** Baseline with a chosen DIMM count (memory:core sweep). */
ServerSku
baselineWithDimms(int dimms)
{
    ServerSku sku = StandardSkus::baseline();
    sku.name = "Baseline " + std::to_string(dimms) + "x64";
    sku.local_memory = MemCapacity::gb(dimms * 64.0);
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Dram) {
            slot.count = dimms;
        }
    }
    sku.validate();
    return sku;
}

} // namespace

int
main()
{
    const CarbonModel model;
    const ServerSku baseline = StandardSkus::baseline();

    std::cout << "Ablation (D1): per-component operational vs embodied "
                 "tradeoffs, per core vs the Gen3 baseline\n\n";

    Table table({"Configuration", "Op save", "Emb save", "Total save"},
                {Align::Left, Align::Right, Align::Right, Align::Right});
    const ServerSku configs[] = {
        StandardSkus::greenEfficient(),     // CPU only.
        StandardSkus::greenCxl(),           // + DRAM reuse.
        efficientWithReusedSsd(),           // + SSD reuse (no DRAM).
        StandardSkus::greenFull(),          // Both reuses.
    };
    for (const auto &sku : configs) {
        const SavingsRow row = model.savingsVs(baseline, sku);
        table.addRow({sku.name, Table::percent(row.operational_savings, 1),
                      Table::percent(row.embodied_savings, 1),
                      Table::percent(row.total_savings, 1)});
    }
    std::cout << table.render() << '\n';

    std::cout << "Memory:core ratio sweep on the baseline (Baseline-"
                 "Resized picks 8 GB/core):\n\n";
    Table sweep({"DIMMs", "GB/core", "Op save", "Emb save", "Total save"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Right});
    for (int dimms = 8; dimms <= 14; ++dimms) {
        const ServerSku sku = baselineWithDimms(dimms);
        const SavingsRow row = model.savingsVs(baseline, sku);
        sweep.addRow({std::to_string(dimms),
                      Table::num(sku.memoryPerCore(), 1),
                      Table::percent(row.operational_savings, 1),
                      Table::percent(row.embodied_savings, 1),
                      Table::percent(row.total_savings, 1)});
    }
    std::cout << sweep.render() << '\n';
    std::cout << "Reading: DRAM/SSD reuse each buys embodied savings at "
                 "an operational cost (D1); right-sizing memory buys both "
                 "but saturates once workloads need the capacity.\n";
    return 0;
}
