/**
 * @file
 * Ablation for design goal D1 (§II): the operational-vs-embodied
 * tradeoff of each low-carbon component decision, isolated. Starting
 * from GreenSKU-Efficient, toggles DDR4-via-CXL reuse and SSD reuse
 * independently, and sweeps the memory:core ratio around the
 * carbon-optimal 8 GB/core of Baseline-Resized.
 */
#include <iostream>

#include "carbon/catalog.h"
#include "carbon/model.h"
#include "carbon/sku.h"
#include "common/parallel.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace {

using namespace gsku;
using namespace gsku::carbon;

/** GreenSKU-Efficient with only SSD reuse (no CXL memory). */
ServerSku
efficientWithReusedSsd()
{
    ServerSku sku = StandardSkus::greenEfficient();
    sku.name = "Efficient + reused SSDs";
    sku.storage = StorageCapacity::tb(2 * 4.0 + 12 * 1.0);
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Ssd) {
            slot = {Catalog::newSsd(4.0), 2};
        }
    }
    sku.slots.push_back({Catalog::reusedSsd(1.0), 12});
    sku.validate();
    return sku;
}

/** Baseline with a chosen DIMM count (memory:core sweep). */
ServerSku
baselineWithDimms(int dimms)
{
    ServerSku sku = StandardSkus::baseline();
    sku.name = "Baseline " + std::to_string(dimms) + "x64";
    sku.local_memory = MemCapacity::gb(dimms * 64.0);
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Dram) {
            slot.count = dimms;
        }
    }
    sku.validate();
    return sku;
}

} // namespace

int
main()
{
    gsku::obs::metrics().reset();

    const CarbonModel model;
    const ServerSku baseline = StandardSkus::baseline();

    std::cout << "Ablation (D1): per-component operational vs embodied "
                 "tradeoffs, per core vs the Gen3 baseline\n\n";

    Table table({"Configuration", "Op save", "Emb save", "Total save"},
                {Align::Left, Align::Right, Align::Right, Align::Right});
    const std::vector<ServerSku> configs = {
        StandardSkus::greenEfficient(),     // CPU only.
        StandardSkus::greenCxl(),           // + DRAM reuse.
        efficientWithReusedSsd(),           // + SSD reuse (no DRAM).
        StandardSkus::greenFull(),          // Both reuses.
    };
    // Rows are independent model evaluations: compute them on the
    // worker pool, render in order.
    const auto config_rows = gsku::parallelMap<SavingsRow>(
        configs.size(), [&](std::size_t i) {
            return model.savingsVs(baseline, configs[i]);
        });
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const SavingsRow &row = config_rows[i];
        table.addRow({configs[i].name,
                      Table::percent(row.operational_savings, 1),
                      Table::percent(row.embodied_savings, 1),
                      Table::percent(row.total_savings, 1)});
    }
    std::cout << table.render() << '\n';

    std::cout << "Memory:core ratio sweep on the baseline (Baseline-"
                 "Resized picks 8 GB/core):\n\n";
    Table sweep({"DIMMs", "GB/core", "Op save", "Emb save", "Total save"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Right});
    const int dimms_lo = 8;
    const int dimms_hi = 14;
    struct DimmRow
    {
        int dimms = 0;
        ServerSku sku;
        SavingsRow row;
    };
    const auto dimm_rows = gsku::parallelMap<DimmRow>(
        static_cast<std::size_t>(dimms_hi - dimms_lo + 1),
        [&](std::size_t i) {
            const int dimms = dimms_lo + static_cast<int>(i);
            const ServerSku sku = baselineWithDimms(dimms);
            return DimmRow{dimms, sku, model.savingsVs(baseline, sku)};
        });
    for (const DimmRow &r : dimm_rows) {
        sweep.addRow({std::to_string(r.dimms),
                      Table::num(r.sku.memoryPerCore(), 1),
                      Table::percent(r.row.operational_savings, 1),
                      Table::percent(r.row.embodied_savings, 1),
                      Table::percent(r.row.total_savings, 1)});
    }
    std::cout << sweep.render() << '\n';
    std::cout << "Reading: DRAM/SSD reuse each buys embodied savings at "
                 "an operational cost (D1); right-sizing memory buys both "
                 "but saturates once workloads need the capacity.\n";

    gsku::obs::RunManifest manifest("ablation_component_sweep");
    manifest
        .config("configs", static_cast<std::int64_t>(configs.size()))
        .config("dimms_lo", static_cast<std::int64_t>(dimms_lo))
        .config("dimms_hi", static_cast<std::int64_t>(dimms_hi));
    if (!manifest.write("MANIFEST_ablation_component_sweep.json")) {
        std::cerr
            << "ablation_component_sweep: failed to write manifest\n";
        return 2;
    }
    return 0;
}
