/**
 * @file
 * Ablation: post-deployment runtime auto-scaling on GreenSKUs (§VIII
 * "Scheduling real-time applications"). Simulates a diurnal day per
 * latency-critical application and reports the core-hours (operational
 * carbon) an auto-scaler saves relative to static peak provisioning.
 */
#include <iostream>

#include "carbon/model.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "perf/autoscaler.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::perf;

    obs::metrics().reset();
    const PerfModel model;
    const AutoScaler scaler(model);
    const CpuSpec green = CpuCatalog::bergamo();
    const carbon::CarbonModel carbon;
    const double kg_per_core_year =
        carbon.perCore(carbon::StandardSkus::greenFull())
            .operational.asKg() /
        carbon::ModelParams{}.lifetime.asYears();

    std::cout << "Runtime auto-scaling on GreenSKU (diurnal load, "
                 "trough 40% of peak, Gen3-derived SLO)\n\n";

    Table table({"Application", "Static cores", "Mean scaled cores",
                 "Core-hours saved", "kgCO2e/VM/year saved"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right});
    double total_saved = 0.0;
    int apps = 0;
    for (const auto &app : AppCatalog::all()) {
        if (app.throughput_only) {
            continue;
        }
        const SloSpec slo = model.slo(app, CpuCatalog::genoa());
        DiurnalLoad load;
        load.peak_qps = slo.load_qps;
        load.trough_fraction = 0.4;

        const AutoScaleResult result =
            scaler.simulateDay(app, green, load);
        const double saved = result.coreHoursSaved();
        total_saved += saved;
        ++apps;
        table.addRow(
            {app.name, std::to_string(result.static_cores),
             Table::num(result.scaled_core_hours / 24.0, 1),
             Table::percent(saved, 1),
             Table::num(saved * result.static_cores * kg_per_core_year,
                        1)});
    }
    std::cout << table.render() << '\n';
    std::cout << "Mean core-hours saved across applications: "
              << Table::percent(total_saved / apps, 1)
              << " — the §VIII opportunity: run-time systems compound "
                 "the design-time savings GSF quantifies.\n";

    obs::RunManifest manifest("ablation_autoscaler");
    manifest.config("trough_fraction", 0.4)
        .config("apps", static_cast<std::int64_t>(apps))
        .config("mean_core_hours_saved", total_saved / apps)
        .config("kg_per_core_year", kg_per_core_year);
    if (!manifest.write("MANIFEST_ablation_autoscaler.json")) {
        std::cerr << "ablation_autoscaler: failed to write manifest\n";
        return 2;
    }
    return 0;
}
