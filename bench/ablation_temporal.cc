/**
 * @file
 * Ablation: temporal workload shifting on top of GreenSKUs (§IX).
 * Prior work shifts flexible workloads toward renewable availability;
 * the paper notes those "solutions can apply on top of GreenSKUs".
 * This bench quantifies the composition: GreenSKU-Full's savings plus
 * shifting the deferrable share of work into the cleanest hours.
 */
#include <iostream>

#include "carbon/intensity_profile.h"
#include "carbon/model.h"
#include "common/table.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::carbon;

    obs::metrics().reset();
    const CarbonModel model;
    const ServerSku baseline = StandardSkus::baseline();
    const ServerSku green = StandardSkus::greenFull();
    const IntensityProfile grid =
        IntensityProfile::solarHeavy(CarbonIntensity::kgPerKwh(0.1));

    const PerCoreEmissions base_pc = model.perCore(baseline);
    const PerCoreEmissions green_pc = model.perCore(green);
    const double sku_savings = 1.0 - green_pc.total() / base_pc.total();
    const double green_op_share =
        green_pc.operational / green_pc.total();

    std::cout << "Temporal shifting on a solar-heavy grid (mean 0.1 "
                 "kg/kWh, 40% diurnal swing, 6-hour clean window)\n\n";

    Table table({"Deferrable share", "Shift-only savings",
                 "GreenSKU-Full only", "Composed (SKU + shifting)"},
                {Align::Right, Align::Right, Align::Right, Align::Right});
    for (double deferrable : {0.0, 0.1, 0.2, 0.3, 0.5}) {
        const double shift_only = TemporalShifter::totalSavings(
            grid, deferrable, 6.0,
            base_pc.operational / base_pc.total());
        const double shift_on_green = TemporalShifter::totalSavings(
            grid, deferrable, 6.0, green_op_share);
        const double composed =
            1.0 - (1.0 - sku_savings) * (1.0 - shift_on_green);
        table.addRow({Table::percent(deferrable),
                      Table::percent(shift_only, 1),
                      Table::percent(sku_savings, 1),
                      Table::percent(composed, 1)});
    }
    std::cout << table.render() << '\n';
    std::cout << "Reading: shifting attacks only the operational share "
                 "and only for deferrable work, so it composes with — "
                 "and cannot substitute for — GreenSKU design, which "
                 "also removes embodied carbon (Sec. IX).\n";

    obs::RunManifest manifest("ablation_temporal");
    manifest.config("mean_ci_kg_per_kwh", 0.1)
        .config("clean_window_h", 6.0)
        .config("sku_savings", sku_savings)
        .config("green_operational_share", green_op_share);
    if (!manifest.write("MANIFEST_ablation_temporal.json")) {
        std::cerr << "ablation_temporal: failed to write manifest\n";
        return 2;
    }
    return 0;
}
