/**
 * @file
 * Ablation: multi-GreenSKU clusters, simulated (D2 cross-check). The
 * analytic portfolio model (ablation_portfolio) says one GreenSKU type
 * captures nearly all savings; this bench re-asks the question with the
 * trace-driven allocator — real packing, real fallbacks — by sizing
 * clusters with one vs two GreenSKU types and comparing emissions.
 */
#include <iostream>

#include "carbon/model.h"
#include "cluster/trace_gen.h"
#include "common/solver.h"
#include "common/table.h"
#include "gsf/adoption.h"
#include "gsf/sizing.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "reliability/maintenance.h"

namespace {

using namespace gsku;

/** Emissions of a sized multi-SKU deployment (buffers omitted — both
 *  scenarios would carry the same baseline-only buffer per §V). */
CarbonMass
deploymentEmissions(const carbon::CarbonModel &model,
                    const carbon::ServerSku &baseline, int baselines,
                    const std::vector<cluster::GreenGroupSpec> &greens,
                    CarbonIntensity ci)
{
    const reliability::MaintenanceModel maintenance;
    auto for_sku = [&](const carbon::ServerSku &sku, int count) {
        const double oos = maintenance.outOfServiceFraction(sku);
        return model.perCore(sku, ci).total() *
               (count * (1.0 + oos) * sku.cores);
    };
    CarbonMass total = for_sku(baseline, baselines);
    for (const auto &g : greens) {
        total += for_sku(g.sku, g.count);
    }
    return total;
}

} // namespace

int
main()
{
    obs::metrics().reset();
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 400.0;
    params.duration_h = 24.0 * 14.0;
    const cluster::VmTrace trace =
        cluster::TraceGenerator(params).generate(17);

    const carbon::CarbonModel model;
    const perf::PerfModel perf;
    const gsf::AdoptionModel adoption(perf, model);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(0.1);
    const cluster::VmAllocator alloc;

    // Right-size the baseline-only reference.
    const gsf::ClusterSizer sizer;
    const int base_only = sizer.rightSizeBaselineOnly(trace, baseline);
    const CarbonMass base_em =
        deploymentEmissions(model, baseline, base_only, {}, ci);

    std::cout << "Multi-SKU cluster simulation (trace "
              << trace.vms.size() << " VMs; baseline-only needs "
              << base_only << " servers)\n\n";

    Table table({"Cluster", "Baselines", "Greens", "Emissions (tCO2e)",
                 "Savings"},
                {Align::Left, Align::Right, Align::Left, Align::Right,
                 Align::Right});
    table.addRow({"baseline only", std::to_string(base_only), "-",
                  Table::num(base_em.asTonnes(), 0), "0%"});

    // Candidate green menus: one type (Full), and two types
    // (Full preferred, Efficient as the secondary option).
    struct Menu
    {
        const char *label;
        std::vector<carbon::ServerSku> skus;
    };
    const Menu menus[] = {
        {"1 type: Full", {carbon::StandardSkus::greenFull()}},
        {"2 types: Full+Efficient",
         {carbon::StandardSkus::greenFull(),
          carbon::StandardSkus::greenEfficient()}},
    };

    for (const Menu &menu : menus) {
        // Equal green counts per type; smallest (b, g) hosting the
        // trace: first minimal baselines with ample greens, then
        // minimal per-type green count.
        std::vector<cluster::GreenGroupSpec> groups;
        for (const auto &sku : menu.skus) {
            groups.push_back(cluster::GreenGroupSpec{
                sku, 0, adoption.buildTable(baseline, sku, ci)});
        }
        // Size: minimal baselines with ample greens everywhere, then
        // minimize each green group's count in turn (preference order),
        // holding the others at their current counts.
        const int ample = base_only;
        auto fits = [&](int baselines) {
            cluster::MultiClusterSpec spec;
            spec.baseline_sku = baseline;
            spec.baselines = baselines;
            spec.greens = groups;
            return alloc.replay(trace, spec).success;
        };
        for (auto &g : groups) {
            g.count = ample;
        }
        const auto b_min = smallestTrue(
            [&](long b) { return fits(static_cast<int>(b)); }, 0,
            base_only);
        for (auto &g : groups) {
            const auto g_min = smallestTrue(
                [&](long count) {
                    g.count = static_cast<int>(count);
                    return fits(static_cast<int>(*b_min));
                },
                0, ample);
            g.count = static_cast<int>(*g_min);
        }
        const CarbonMass em = deploymentEmissions(
            model, baseline, static_cast<int>(*b_min), groups, ci);
        std::string green_text;
        for (std::size_t i = 0; i < groups.size(); ++i) {
            green_text += (i ? " + " : "") +
                          std::to_string(groups[i].count) + "x " +
                          groups[i].sku.name;
        }
        table.addRow({menu.label, std::to_string(*b_min), green_text,
                      Table::num(em.asTonnes(), 0),
                      Table::percent(1.0 - em / base_em, 1)});
    }

    std::cout << table.render() << '\n';
    std::cout << "Reading: with packing simulated, the second GreenSKU "
                 "type still buys no extra savings (it splits the same "
                 "adopters across more, partially-filled server pools) — "
                 "agreeing with the analytic D2 portfolio model, before "
                 "even counting its extra growth buffer.\n";

    obs::RunManifest manifest("ablation_multi_sku");
    manifest.config("target_concurrent_vms", params.target_concurrent_vms)
        .config("duration_h", params.duration_h)
        .config("ci_kg_per_kwh", ci.asKgPerKwh())
        .config("baseline_only_servers",
                static_cast<std::int64_t>(base_only))
        .seed("trace", 17);
    if (!manifest.write("MANIFEST_ablation_multi_sku.json")) {
        std::cerr << "ablation_multi_sku: failed to write manifest\n";
        return 2;
    }
    return 0;
}
