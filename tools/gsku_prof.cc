/**
 * @file
 * gsku_prof: render a `gsku-profile-v1` deterministic work-unit
 * profile (obs/profile.h) as text tables, collapsed flamegraph stacks,
 * or JSON — and diff two profiles with diff(1) exit semantics, which
 * is what the CI perf-regression gate builds on.
 *
 * Usage:
 *   gsku_prof [options] <run.profile.json>
 *   gsku_prof --diff <a.profile.json> <b.profile.json>
 *
 * Options:
 *   --top <n>     show only the n domains with the most self units
 *   --collapsed   print flamegraph collapsed stacks ("a;b;c <units>")
 *   --json        re-emit the parsed profile as JSON
 *   --diff        compare the deterministic lanes of two profiles:
 *                 silent + exit 0 when identical, per-domain delta
 *                 table + exit 1 when they differ (wall_ns is
 *                 volatile and never compared)
 *   --help        show usage
 *
 * Exit codes follow diff(1): 0 identical / rendered, 1 profiles
 * differ, 2 trouble (bad usage, unreadable or corrupt profile — the
 * UserError text names the byte offset).
 */
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parse.h"
#include "common/profile_read.h"
#include "common/table.h"

namespace {

using gsku::Align;
using gsku::obs::ProfileData;
using gsku::Table;
using gsku::obs::ProfileEntry;

void
printUsage(std::ostream &out)
{
    out << "usage: gsku_prof [options] <run.profile.json>\n"
           "       gsku_prof --diff <a.profile.json> <b.profile.json>\n"
           "options:\n"
           "  --top <n>    show only the n largest domains by self "
           "units\n"
           "  --collapsed  print flamegraph collapsed stacks\n"
           "  --json       re-emit the parsed profile as JSON\n"
           "  --diff       compare two profiles (diff(1) exit codes)\n"
           "  --help       show this message\n";
}

std::string
hex16(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
        out[15 - i] = digits[(v >> (i * 4)) & 0xfu];
    }
    return out;
}

/** Entries sorted by self units (desc), path as the tiebreak so the
 *  rendering is as deterministic as the artifact itself. */
std::vector<ProfileEntry>
bySelfUnits(const ProfileData &data)
{
    std::vector<ProfileEntry> entries = data.entries;
    std::sort(entries.begin(), entries.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  if (a.self_units != b.self_units) {
                      return a.self_units > b.self_units;
                  }
                  return a.path < b.path;
              });
    return entries;
}

void
renderTable(const std::string &path, const ProfileData &data,
            std::size_t top)
{
    std::cout << "gsku_prof: " << path << "  program " << data.program
              << "  total_units " << data.total_units << "  checksum "
              << hex16(data.checksum)
              << (data.wall_lane ? "  wall-lane (volatile)" : "")
              << "\n\n";

    std::vector<std::string> headers = {"Domain", "Self", "Total",
                                        "Scopes", "Self %"};
    std::vector<Align> aligns = {Align::Left, Align::Right, Align::Right,
                                 Align::Right, Align::Right};
    if (data.wall_lane) {
        headers.push_back("Wall (ms)");
        aligns.push_back(Align::Right);
    }
    Table table(headers, aligns);

    const std::vector<ProfileEntry> entries = bySelfUnits(data);
    const std::size_t rows = std::min(top, entries.size());
    for (std::size_t i = 0; i < rows; ++i) {
        const ProfileEntry &e = entries[i];
        const double share =
            data.total_units > 0
                ? static_cast<double>(e.self_units) /
                      static_cast<double>(data.total_units)
                : 0.0;
        std::vector<std::string> row = {
            e.path, std::to_string(e.self_units),
            std::to_string(e.total_units), std::to_string(e.scopes),
            Table::percent(share, 1)};
        if (data.wall_lane) {
            row.push_back(
                Table::num(static_cast<double>(e.wall_ns) / 1e6, 2));
        }
        table.addRow(row);
    }
    std::cout << table.render();
    if (rows < entries.size()) {
        std::cout << "(" << entries.size() - rows
                  << " smaller domains hidden; use --top "
                  << entries.size() << " for all)\n";
    }
}

/** The same collapsed-stack lines writeProfile() puts next to the
 *  JSON artifact: one "path units" line per domain with self units. */
void
renderCollapsed(const ProfileData &data)
{
    for (const ProfileEntry &e : data.entries) {
        if (e.self_units > 0) {
            std::cout << e.path << ' ' << e.self_units << '\n';
        }
    }
}

void
renderJson(const ProfileData &data)
{
    std::cout << "{\"schema\": \"gsku-profile-v1\", \"program\": \""
              << data.program << "\", \"wall_lane\": "
              << (data.wall_lane ? "true" : "false")
              << ", \"total_units\": " << data.total_units
              << ", \"domains\": [";
    for (std::size_t i = 0; i < data.entries.size(); ++i) {
        const ProfileEntry &e = data.entries[i];
        std::cout << (i ? ", " : "") << "{\"path\": \"" << e.path
                  << "\", \"self_units\": " << e.self_units
                  << ", \"total_units\": " << e.total_units
                  << ", \"scopes\": " << e.scopes;
        if (data.wall_lane) {
            std::cout << ", \"wall_ns\": " << e.wall_ns;
        }
        std::cout << "}";
    }
    std::cout << "], \"checksum_fnv1a64\": \"" << hex16(data.checksum)
              << "\"}\n";
}

/**
 * Compare the deterministic lanes of two profiles. Quiet and 0 when
 * identical (like diff on equal files); a per-domain delta table and 1
 * when not. wall_ns is volatile by contract and never enters the
 * comparison.
 */
int
diffProfiles(const std::string &path_a, const ProfileData &a,
             const std::string &path_b, const ProfileData &b)
{
    // The checksum covers exactly the deterministic lane (sorted
    // paths + self units + scope counts), so equal checksums mean
    // equal profiles and the diff is empty.
    if (a.checksum == b.checksum) {
        return 0;
    }

    std::map<std::string, const ProfileEntry *> in_a;
    std::map<std::string, const ProfileEntry *> in_b;
    for (const ProfileEntry &e : a.entries) {
        in_a[e.path] = &e;
    }
    for (const ProfileEntry &e : b.entries) {
        in_b[e.path] = &e;
    }

    std::cout << "--- " << path_a << "  (" << a.program << ", "
              << a.total_units << " units)\n"
              << "+++ " << path_b << "  (" << b.program << ", "
              << b.total_units << " units)\n\n";

    Table table({"Domain", "Self A", "Self B", "Delta", "Scopes A",
                 "Scopes B"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right});
    auto u64str = [](const ProfileEntry *e, std::uint64_t v) {
        return e ? std::to_string(v) : std::string("-");
    };
    std::size_t changed = 0;
    for (const auto &[path, ea] : in_a) {
        auto it = in_b.find(path);
        const ProfileEntry *eb = it == in_b.end() ? nullptr : it->second;
        const bool same = eb != nullptr &&
                          ea->self_units == eb->self_units &&
                          ea->scopes == eb->scopes;
        if (same) {
            continue;
        }
        ++changed;
        const std::int64_t delta =
            static_cast<std::int64_t>(eb ? eb->self_units : 0) -
            static_cast<std::int64_t>(ea->self_units);
        table.addRow({path, std::to_string(ea->self_units),
                      u64str(eb, eb ? eb->self_units : 0),
                      (delta >= 0 ? "+" : "") + std::to_string(delta),
                      std::to_string(ea->scopes),
                      u64str(eb, eb ? eb->scopes : 0)});
    }
    for (const auto &[path, eb] : in_b) {
        if (in_a.count(path)) {
            continue;
        }
        ++changed;
        table.addRow({path, "-", std::to_string(eb->self_units),
                      "+" + std::to_string(eb->self_units), "-",
                      std::to_string(eb->scopes)});
    }
    std::cout << table.render() << changed
              << " domain(s) differ in the deterministic lane\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool collapsed = false;
    bool json = false;
    bool diff = false;
    std::size_t top = std::string::npos;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--collapsed") {
            collapsed = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--diff") {
            diff = true;
        } else if (arg == "--top") {
            if (i + 1 >= argc) {
                std::cerr << "gsku_prof: --top needs a count\n";
                return 2;
            }
            try {
                top = static_cast<std::size_t>(gsku::parseInt(
                    argv[++i],
                    gsku::ParseContext{"argv", 0, "--top count"}));
            } catch (const gsku::UserError &e) {
                std::cerr << "gsku_prof: " << e.what() << '\n';
                return 2;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "gsku_prof: unknown option " << arg << '\n';
            printUsage(std::cerr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    const std::size_t want = diff ? 2 : 1;
    if (paths.size() != want) {
        printUsage(std::cerr);
        return 2;
    }

    try {
        if (diff) {
            const ProfileData a = gsku::obs::readProfile(paths[0]);
            const ProfileData b = gsku::obs::readProfile(paths[1]);
            return diffProfiles(paths[0], a, paths[1], b);
        }
        const ProfileData data = gsku::obs::readProfile(paths[0]);
        if (collapsed) {
            renderCollapsed(data);
        } else if (json) {
            renderJson(data);
        } else {
            renderTable(paths[0], data, top);
        }
        return 0;
    } catch (const gsku::UserError &e) {
        std::cerr << "gsku_prof: " << e.what() << '\n';
        return 2;
    }
}
