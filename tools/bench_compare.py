#!/usr/bin/env python3
"""Compare a bench run against a committed baseline (perf regression gate).

Two classes of check, with different severities:

  strict    Checksum drift is a hard failure: the bench checksum
            fingerprints the model's numeric outputs, so any change
            means the *results* changed, not just the speed. Also
            strict: benchmark name/config mismatches and legs present
            in the baseline but missing from the run (a silently
            dropped thread count would hide a regression).

  tolerant  Wall-clock moves are warnings by default (CI machines are
            noisy and differ from the machine that recorded the
            baseline); ``--max-slowdown`` sets the warning threshold as
            a ratio (default 1.5 = warn beyond 50% slower). Pass
            ``--strict-time`` to turn those warnings into failures on
            a machine you trust for timing.

            Peak memory works the same way when both legs record
            ``max_rss_kb`` (bench_fleet does): ``--max-rss-growth``
            sets the warning ratio (default 1.25 = warn beyond 25%
            more resident memory than the baseline — RSS is far less
            machine-noisy than wall clock, so the band is tighter),
            and ``--strict-rss`` turns those warnings into failures.
            A leg using *less* memory than baseline never warns.

Typical use (CI):
  bench/bench_sweep
  tools/bench_compare.py --baseline bench/baselines/BENCH_sweep.baseline.json \\
                         --current BENCH_sweep.json

Refreshing the baseline after an intended output change:
  bench/bench_sweep && cp BENCH_sweep.json \\
      bench/baselines/BENCH_sweep.baseline.json

Exit status: 0 when every strict check passes (warnings allowed), 1 on
any strict failure (or timing failure under --strict-time), 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path):
    try:
        with path.open(encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare.py: cannot load {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON against a committed baseline")
    parser.add_argument("--baseline", required=True, metavar="FILE",
                        help="committed baseline JSON "
                             "(bench/baselines/*.baseline.json)")
    parser.add_argument("--current", required=True, metavar="FILE",
                        help="freshly produced bench JSON")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        metavar="RATIO",
                        help="warn when a leg is slower than baseline "
                             "by more than this ratio (default 1.5)")
    parser.add_argument("--strict-time", action="store_true",
                        help="treat wall-clock warnings as failures")
    parser.add_argument("--max-rss-growth", type=float, default=1.25,
                        metavar="RATIO",
                        help="warn when a leg's max_rss_kb exceeds the "
                             "baseline by more than this ratio "
                             "(default 1.25)")
    parser.add_argument("--strict-rss", action="store_true",
                        help="treat peak-memory warnings as failures")
    args = parser.parse_args()

    baseline = load(Path(args.baseline))
    current = load(Path(args.current))

    errors: list[str] = []
    warnings: list[str] = []
    rss_warnings: list[str] = []

    # Every top-level baseline key except the legs themselves and
    # machine- or speed-dependent fields is config that must match, so
    # each benchmark's JSON defines its own comparison surface.
    volatile = {"legs", "hardware_concurrency", "checksums_identical"}
    for key in baseline:
        if key in volatile:
            continue
        if baseline.get(key) != current.get(key):
            errors.append(
                f"config mismatch on {key!r}: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r}")

    if not current.get("checksums_identical", False):
        errors.append("current run reports checksums_identical=false: "
                      "results depend on the execution path")

    def leg_label(leg):
        # bench_sweep keys legs by thread count, bench_fleet by name.
        return leg.get("leg", leg.get("threads"))

    base_legs = {leg_label(leg): leg for leg in baseline.get("legs", [])}
    cur_legs = {leg_label(leg): leg for leg in current.get("legs", [])}
    if not base_legs:
        errors.append("baseline has no legs")

    for label, base in sorted(base_legs.items(), key=lambda kv: str(kv[0])):
        cur = cur_legs.get(label)
        if cur is None:
            errors.append(f"leg {label!r} present in baseline "
                          f"but missing from the current run")
            continue
        if cur.get("checksum") != base.get("checksum"):
            errors.append(
                f"CHECKSUM DRIFT at leg {label!r}: baseline "
                f"{base.get('checksum')} vs current "
                f"{cur.get('checksum')} — the model outputs changed; "
                f"if intended, refresh the committed baseline")
        base_s = float(base.get("seconds", 0.0))
        cur_s = float(cur.get("seconds", 0.0))
        if base_s > 0.0 and cur_s > base_s * args.max_slowdown:
            warnings.append(
                f"leg {label!r}: {cur_s:.3f}s vs baseline "
                f"{base_s:.3f}s ({cur_s / base_s:.2f}x slower than "
                f"baseline, threshold {args.max_slowdown:.2f}x)")
        base_rss = float(base.get("max_rss_kb", 0.0))
        cur_rss = float(cur.get("max_rss_kb", 0.0))
        if base_rss > 0.0 and cur_rss > base_rss * args.max_rss_growth:
            rss_warnings.append(
                f"leg {label!r}: max_rss {cur_rss:.0f} kB vs baseline "
                f"{base_rss:.0f} kB ({cur_rss / base_rss:.2f}x more "
                f"resident memory, threshold "
                f"{args.max_rss_growth:.2f}x)")

    for w in warnings + rss_warnings:
        print(f"warning: {w}")
    for e in errors:
        print(f"error: {e}")

    if errors or (args.strict_time and warnings) or \
            (args.strict_rss and rss_warnings):
        print(f"\nbench_compare.py: FAIL ({len(errors)} error(s), "
              f"{len(warnings)} timing warning(s), "
              f"{len(rss_warnings)} memory warning(s))", file=sys.stderr)
        return 1
    soft = warnings + rss_warnings
    status = "clean" if not soft else \
        f"clean with {len(warnings)} timing and " \
        f"{len(rss_warnings)} memory warning(s)"
    print(f"bench_compare.py: {status} "
          f"({len(base_legs)} leg(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
