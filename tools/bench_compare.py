#!/usr/bin/env python3
"""Compare a bench run against a committed baseline (perf regression gate).

Two classes of check, with different severities:

  strict    Checksum drift is a hard failure: the bench checksum
            fingerprints the model's numeric outputs, so any change
            means the *results* changed, not just the speed. Also
            strict: benchmark name/config mismatches and legs present
            in the baseline but missing from the run (a silently
            dropped thread count would hide a regression).

  tolerant  Wall-clock moves are warnings by default (CI machines are
            noisy and differ from the machine that recorded the
            baseline); ``--max-slowdown`` sets the warning threshold as
            a ratio (default 1.5 = warn beyond 50% slower). Pass
            ``--strict-time`` to turn those warnings into failures on
            a machine you trust for timing.

            Peak memory works the same way when both legs record
            ``max_rss_kb`` (bench_fleet does): ``--max-rss-growth``
            sets the warning ratio (default 1.25 = warn beyond 25%
            more resident memory than the baseline — RSS is far less
            machine-noisy than wall clock, so the band is tighter),
            and ``--strict-rss`` turns those warnings into failures.
            A leg using *less* memory than baseline never warns.

A third, fully strict surface compares ``gsku-profile-v1`` work-unit
profiles (src/obs/profile.h). Work units are deterministic logical
counts — VM events replayed, placements attempted, sweep jobs, Erlang
evaluations, cache probes — so unlike wall clock they are
hardware-independent and every drift check is a hard failure:

  profile   ``--profile-baseline``/``--profile-current`` compare two
            profiles domain by domain. Schema or program mismatches,
            domains added or removed, a domain's self units moving
            between zero and nonzero, or a unit ratio outside the
            ``--max-unit-drift`` band (default 1.0 = exact equality;
            widen it only for benchmarks with intentionally variable
            work) are all errors. Wall time never enters the
            comparison.

Typical use (CI):
  bench/bench_sweep --profile PROFILE_sweep.json
  tools/bench_compare.py --baseline bench/baselines/BENCH_sweep.baseline.json \\
                         --current BENCH_sweep.json \\
                         --profile-baseline bench/baselines/PROFILE_sweep.baseline.json \\
                         --profile-current PROFILE_sweep.json

Refreshing the baseline after an intended output change:
  bench/bench_sweep && cp BENCH_sweep.json \\
      bench/baselines/BENCH_sweep.baseline.json

``--self-test`` runs the gate against built-in fixtures (a baseline
profile vs a drifted one) and fails unless every injected regression —
unit drift, a dropped domain, a new domain, zero-to-nonzero movement —
is caught; CI runs it so the gate itself is tested.

Exit status: 0 when every strict check passes (warnings allowed), 1 on
any strict failure (or timing failure under --strict-time), 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path):
    try:
        with path.open(encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare.py: cannot load {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def compare_profiles(baseline, current, band: float) -> list[str]:
    """Hard drift checks between two gsku-profile-v1 documents.

    Returns the list of errors; work units are deterministic, so there
    is no warning tier here.
    """
    errors: list[str] = []
    for label, doc in (("baseline", baseline), ("current", current)):
        if doc.get("schema") != "gsku-profile-v1":
            errors.append(f"profile {label}: schema is "
                          f"{doc.get('schema')!r}, expected "
                          f"'gsku-profile-v1'")
    if errors:
        return errors
    if baseline.get("program") != current.get("program"):
        errors.append(f"profile program mismatch: baseline "
                      f"{baseline.get('program')!r} vs current "
                      f"{current.get('program')!r}")

    base_domains = {d["path"]: d for d in baseline.get("domains", [])}
    cur_domains = {d["path"]: d for d in current.get("domains", [])}
    if not base_domains:
        errors.append("profile baseline has no domains")

    for path, base in sorted(base_domains.items()):
        cur = cur_domains.get(path)
        if cur is None:
            errors.append(f"profile domain '{path}' disappeared: the "
                          f"instrumented path no longer runs (or lost "
                          f"its instrumentation)")
            continue
        base_units = int(base.get("self_units", 0))
        cur_units = int(cur.get("self_units", 0))
        if (base_units == 0) != (cur_units == 0):
            errors.append(f"profile domain '{path}' moved between "
                          f"zero and nonzero work ({base_units} -> "
                          f"{cur_units} self units)")
            continue
        if base_units == 0:
            continue
        ratio = cur_units / base_units
        if ratio > band or ratio < 1.0 / band:
            errors.append(
                f"WORK-UNIT DRIFT at domain '{path}': {cur_units} vs "
                f"baseline {base_units} self units ({ratio:.4f}x, "
                f"allowed band {1.0 / band:.4f}x..{band:.4f}x) — the "
                f"amount of work changed; if intended, refresh the "
                f"committed profile baseline")
    for path in sorted(set(cur_domains) - set(base_domains)):
        errors.append(f"profile domain '{path}' is new: "
                      f"{cur_domains[path].get('self_units')} self "
                      f"unit(s) not covered by the baseline; refresh "
                      f"the committed profile baseline to adopt it")
    return errors


def self_test() -> int:
    """Prove the profile gate catches every injected regression."""
    base = {
        "schema": "gsku-profile-v1",
        "program": "bench_sweep",
        "wall_lane": False,
        "total_units": 1100,
        "domains": [
            {"path": "evaluator.sweep", "self_units": 0,
             "total_units": 1100, "scopes": 1},
            {"path": "evaluator.sweep;jobs", "self_units": 1000,
             "total_units": 1000, "scopes": 48},
            {"path": "evaluator.sweep;sizer.size", "self_units": 100,
             "total_units": 100, "scopes": 48},
        ],
        "checksum_fnv1a64": "0" * 16,
    }
    clean = compare_profiles(base, base, band=1.0)
    failures: list[str] = []
    if clean:
        failures.append(f"identical profiles produced errors: {clean}")

    import copy
    drifted = copy.deepcopy(base)
    drifted["domains"][1]["self_units"] = 1013          # unit drift
    del drifted["domains"][2]                           # dropped domain
    drifted["domains"].append(                          # new domain
        {"path": "trace_gen.generate", "self_units": 7,
         "total_units": 7, "scopes": 1})
    drifted["domains"][0]["self_units"] = 3             # zero -> nonzero
    caught = compare_profiles(base, drifted, band=1.0)
    for needle in ("WORK-UNIT DRIFT at domain 'evaluator.sweep;jobs'",
                   "'evaluator.sweep;sizer.size' disappeared",
                   "'trace_gen.generate' is new",
                   "'evaluator.sweep' moved between zero and nonzero"):
        if not any(needle in e for e in caught):
            failures.append(f"injected regression not caught: "
                            f"expected an error matching {needle!r}")

    # The band must tolerate exactly what it promises: 1013/1000 is
    # inside a 1.05 band, so only the structural injections remain.
    banded = compare_profiles(base, drifted, band=1.05)
    if any("WORK-UNIT DRIFT" in e for e in banded):
        failures.append("1.3% unit drift flagged despite a 1.05 band")

    for f in failures:
        print(f"self-test failure: {f}", file=sys.stderr)
    if failures:
        print(f"bench_compare.py: SELF-TEST FAIL ({len(failures)} "
              f"failure(s))", file=sys.stderr)
        return 1
    print("bench_compare.py: self-test clean (drift, dropped, new, "
          "and zero-crossing domains all caught)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON against a committed baseline")
    parser.add_argument("--baseline", metavar="FILE",
                        help="committed baseline JSON "
                             "(bench/baselines/*.baseline.json)")
    parser.add_argument("--current", metavar="FILE",
                        help="freshly produced bench JSON")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        metavar="RATIO",
                        help="warn when a leg is slower than baseline "
                             "by more than this ratio (default 1.5)")
    parser.add_argument("--strict-time", action="store_true",
                        help="treat wall-clock warnings as failures")
    parser.add_argument("--max-rss-growth", type=float, default=1.25,
                        metavar="RATIO",
                        help="warn when a leg's max_rss_kb exceeds the "
                             "baseline by more than this ratio "
                             "(default 1.25)")
    parser.add_argument("--strict-rss", action="store_true",
                        help="treat peak-memory warnings as failures")
    parser.add_argument("--profile-baseline", metavar="FILE",
                        help="committed gsku-profile-v1 baseline "
                             "(bench/baselines/PROFILE_*.baseline.json)")
    parser.add_argument("--profile-current", metavar="FILE",
                        help="freshly produced gsku-profile-v1 JSON")
    parser.add_argument("--max-unit-drift", type=float, default=1.0,
                        metavar="RATIO",
                        help="fail when a domain's self units drift "
                             "from the baseline by more than this "
                             "ratio in either direction (default 1.0 "
                             "= exact equality; units are "
                             "deterministic)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the profile gate against built-in "
                             "drift fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if bool(args.baseline) != bool(args.current):
        parser.error("--baseline and --current go together")
    if bool(args.profile_baseline) != bool(args.profile_current):
        parser.error("--profile-baseline and --profile-current go "
                     "together")
    if not args.baseline and not args.profile_baseline:
        parser.error("nothing to compare: pass --baseline/--current, "
                     "--profile-baseline/--profile-current, or "
                     "--self-test")
    if args.max_unit_drift < 1.0:
        parser.error("--max-unit-drift must be >= 1.0")

    errors: list[str] = []
    warnings: list[str] = []
    rss_warnings: list[str] = []

    if args.profile_baseline:
        errors.extend(compare_profiles(
            load(Path(args.profile_baseline)),
            load(Path(args.profile_current)), args.max_unit_drift))

    if not args.baseline:
        for e in errors:
            print(f"error: {e}")
        if errors:
            print(f"\nbench_compare.py: FAIL ({len(errors)} "
                  f"error(s))", file=sys.stderr)
            return 1
        print("bench_compare.py: clean (profiles compared)")
        return 0

    baseline = load(Path(args.baseline))
    current = load(Path(args.current))

    # Every top-level baseline key except the legs themselves and
    # machine- or speed-dependent fields is config that must match, so
    # each benchmark's JSON defines its own comparison surface.
    # evalcache_* counts depend on cache temperature (a warm CI leg
    # hits where the baseline-recording cold run missed), so like wall
    # times they are reported but never compared.
    volatile = {"legs", "hardware_concurrency", "checksums_identical",
                "evalcache_hits", "evalcache_misses"}
    for key in baseline:
        if key in volatile:
            continue
        if baseline.get(key) != current.get(key):
            errors.append(
                f"config mismatch on {key!r}: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r}")

    if not current.get("checksums_identical", False):
        errors.append("current run reports checksums_identical=false: "
                      "results depend on the execution path")

    def leg_label(leg):
        # bench_sweep keys legs by thread count, bench_fleet by name.
        return leg.get("leg", leg.get("threads"))

    base_legs = {leg_label(leg): leg for leg in baseline.get("legs", [])}
    cur_legs = {leg_label(leg): leg for leg in current.get("legs", [])}
    if not base_legs:
        errors.append("baseline has no legs")

    for label, base in sorted(base_legs.items(), key=lambda kv: str(kv[0])):
        cur = cur_legs.get(label)
        if cur is None:
            errors.append(f"leg {label!r} present in baseline "
                          f"but missing from the current run")
            continue
        if cur.get("checksum") != base.get("checksum"):
            errors.append(
                f"CHECKSUM DRIFT at leg {label!r}: baseline "
                f"{base.get('checksum')} vs current "
                f"{cur.get('checksum')} — the model outputs changed; "
                f"if intended, refresh the committed baseline")
        base_s = float(base.get("seconds", 0.0))
        cur_s = float(cur.get("seconds", 0.0))
        if base_s > 0.0 and cur_s > base_s * args.max_slowdown:
            warnings.append(
                f"leg {label!r}: {cur_s:.3f}s vs baseline "
                f"{base_s:.3f}s ({cur_s / base_s:.2f}x slower than "
                f"baseline, threshold {args.max_slowdown:.2f}x)")
        base_rss = float(base.get("max_rss_kb", 0.0))
        cur_rss = float(cur.get("max_rss_kb", 0.0))
        if base_rss > 0.0 and cur_rss > base_rss * args.max_rss_growth:
            rss_warnings.append(
                f"leg {label!r}: max_rss {cur_rss:.0f} kB vs baseline "
                f"{base_rss:.0f} kB ({cur_rss / base_rss:.2f}x more "
                f"resident memory, threshold "
                f"{args.max_rss_growth:.2f}x)")

    for w in warnings + rss_warnings:
        print(f"warning: {w}")
    for e in errors:
        print(f"error: {e}")

    if errors or (args.strict_time and warnings) or \
            (args.strict_rss and rss_warnings):
        print(f"\nbench_compare.py: FAIL ({len(errors)} error(s), "
              f"{len(warnings)} timing warning(s), "
              f"{len(rss_warnings)} memory warning(s))", file=sys.stderr)
        return 1
    soft = warnings + rss_warnings
    status = "clean" if not soft else \
        f"clean with {len(warnings)} timing and " \
        f"{len(rss_warnings)} memory warning(s)"
    print(f"bench_compare.py: {status} "
          f"({len(base_legs)} leg(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
