/**
 * @file
 * gsku_analyze — the GreenSKU repo-invariant static analyzer
 * (docs/analysis.md). Token-aware successor to tools/lint.py: the
 * same eight rules and `// lint-ok:` suppression grammar, rebuilt on
 * a real lexer, plus the include-graph layering/cycle rules and the
 * determinism-taint pass. Compile-free: it needs sources only, no
 * compile_commands.json.
 *
 * Usage:
 *   gsku_analyze [paths ...]            (default: src)
 *     --root DIR              repo root for relative paths (default .)
 *     --rules a,b,...         run only these rules
 *     --disable a,b,...       subtract rules from the run set
 *     --allow RULE:PATH       mask RULE in PATH (exact file, or a
 *                             'dir/' prefix) — a per-tree rule mask
 *     --json FILE             write findings JSON
 *     --sarif FILE            write SARIF 2.1.0
 *     --dump-include-graph FILE  write the include-graph JSON
 *     --list-rules            print rule names and exit
 *     --quiet                 suppress the human report on stdout
 *
 * Exit status: 0 clean, 1 findings (or stale suppressions), 2 usage.
 */
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "common/error.h"

namespace {

void
splitList(const std::string &arg, std::set<std::string> &out)
{
    std::size_t begin = 0;
    while (begin <= arg.size()) {
        std::size_t end = arg.find(',', begin);
        if (end == std::string::npos)
            end = arg.size();
        if (end > begin)
            out.insert(arg.substr(begin, end - begin));
        begin = end + 1;
    }
}

int
usage(const std::string &message)
{
    std::cerr << "gsku_analyze: " << message << "\n"
              << "usage: gsku_analyze [paths ...] [--root DIR] "
                 "[--rules a,b] [--disable a,b]\n"
              << "                    [--allow RULE:PATH] [--json FILE] "
                 "[--sarif FILE]\n"
              << "                    [--dump-include-graph FILE] "
                 "[--list-rules] [--quiet]\n";
    return 2;
}

bool
writeFile(const std::string &path,
          const std::function<void(std::ostream &)> &emit)
{
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) {
        std::cerr << "gsku_analyze: cannot write " << path << "\n";
        return false;
    }
    emit(out);
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gsku::analyze;

    AnalyzerOptions options;
    std::string jsonPath, sarifPath, graphPath;
    bool listRules = false;
    bool quiet = false;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> const std::string & {
            if (i + 1 >= args.size()) {
                std::cerr << "gsku_analyze: " << flag
                          << " needs an argument\n";
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--root") {
            options.root = next("--root");
        } else if (arg == "--rules") {
            splitList(next("--rules"), options.enabledRules);
        } else if (arg == "--disable") {
            splitList(next("--disable"), options.disabledRules);
        } else if (arg == "--allow") {
            const std::string &mask = next("--allow");
            std::size_t colon = mask.find(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 >= mask.size()) {
                return usage("--allow expects RULE:PATH, got '" + mask +
                             "'");
            }
            options.extraAllows.emplace_back(mask.substr(0, colon),
                                             mask.substr(colon + 1));
        } else if (arg == "--json") {
            jsonPath = next("--json");
        } else if (arg == "--sarif") {
            sarifPath = next("--sarif");
        } else if (arg == "--dump-include-graph") {
            graphPath = next("--dump-include-graph");
        } else if (!arg.empty() && arg[0] == '-') {
            return usage("unknown option '" + arg + "'");
        } else {
            options.paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const RuleInfo &r : ruleCatalog())
            std::cout << r.name << "\n";
        return 0;
    }

    try {
        AnalysisResult result = analyze(options);

        bool ioOk = true;
        if (!jsonPath.empty()) {
            ioOk = writeFile(jsonPath, [&](std::ostream &out) {
                       writeFindingsJson(out, result);
                   }) && ioOk;
        }
        if (!sarifPath.empty()) {
            ioOk = writeFile(sarifPath, [&](std::ostream &out) {
                       writeSarif(out, result, options.root);
                   }) && ioOk;
        }
        if (!graphPath.empty()) {
            ioOk = writeFile(graphPath, [&](std::ostream &out) {
                       result.graph->dumpJson(out);
                   }) && ioOk;
        }
        if (!quiet)
            writeText(std::cout, result);
        if (!ioOk)
            return 2;
        return result.clean() ? 0 : 1;
    } catch (const gsku::UserError &e) {
        std::cerr << "gsku_analyze: " << e.what() << "\n";
        return 2;
    }
}
