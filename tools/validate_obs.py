#!/usr/bin/env python3
"""Validate observability artifacts: Chrome traces and run manifests.

Checks (each a hard CI gate — see docs/observability.md):

  trace     The file parses as JSON, has a ``traceEvents`` list of
            complete ("ph": "X") events with the fields Perfetto needs
            (name, cat, ts, dur, pid, tid), all durations are
            non-negative, and per-(pid, tid) the spans are well-nested
            (no partial overlaps).

  manifest  The file parses as JSON with schema ``gsku-manifest-v1``
            and carries the program name, config, seeds, threading,
            build info, and an embedded metrics snapshot
            (counters/gauges/histograms). Histogram bucket counts must
            sum to the histogram's total count.

  metrics   With ``--require-nonzero NAME...``, each named counter in
            the manifest's metrics snapshot must be present and > 0 —
            CI uses this to prove the engines actually ran through the
            instrumented paths.

  tsdb      The file is a ``gsku-tsdb-v1`` telemetry time series
            (src/obs/timeseries.h): magic and version, a header naming
            the schema, 8-byte-aligned frames with sequential series
            ids, sample sequence numbers counting from zero, a strictly
            increasing logical clock, points only after a sample and
            only for defined series, and a footer whose frame and
            sample counts and both FNV-1a checksums (header, and the
            deterministic frame lane) match a from-scratch re-parse.
            Series flagged volatile must also *be* volatile by the
            shared name classification (worker.*, wall.*, pool shape,
            stall counts) and vice versa.

  profile   The file is a ``gsku-profile-v1`` deterministic work-unit
            profile (src/obs/profile.h): schema and program, sorted
            unique domain paths, per-entry total >= self, each
            parent's total equal to its self units plus its direct
            children's totals, the file total equal to the sum of all
            self units, ``wall_ns`` present exactly when the header
            says the volatile wall lane is on, and a recorded FNV-1a
            checksum that matches a from-scratch re-hash of the
            deterministic lane (paths + self units + scope counts —
            never wall time). When a ``<path>.collapsed`` flamegraph
            sidecar exists it must list exactly the domains with
            nonzero self units, in the same order.

  ledger    The file is a ``gsku-ledger-v1`` decision ledger
            (src/obs/ledger.h): a schema header whose event count
            matches the body, followed by flat JSONL facts with known
            event names, sorted and unique (the ledger is a *set* of
            facts). Cross-references hold: every carbon.component leaf
            has a carbon.per_core parent for the same (sku, carbon
            intensity), and every infeasible design.verdict names the
            binding constraint it violated.

Usage:
  tools/validate_obs.py [--trace trace.json]... [--manifest m.json]...
                        [--ledger ledger.jsonl]... [--tsdb run.tsdb]...
                        [--profile run.profile.json]...
                        [--require-nonzero COUNTER...]

Exit status: 0 when every check passes, 1 on any failure, 2 on usage
errors (e.g. a named file is missing).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_EVENT_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")

# Mirrors kLedgerEventNames in src/obs/ledger.h (the registry of record).
LEDGER_SCHEMA = "gsku-ledger-v1"
LEDGER_EVENTS = {
    "carbon.per_core",
    "carbon.component",
    "tco.per_core",
    "tco.component",
    "adoption.decision",
    "perf.slo_margin",
    "sizing.probe",
    "sizing.result",
    "allocator.outcome",
    "design.verdict",
    "evaluator.verdict",
    "maintenance.gate",
    "cache.entry",
    "search.move",
}


# Mirrors src/obs/timeseries.h (the gsku-tsdb-v1 container).
TSDB_MAGIC = b"GSKUTSB1"
TSDB_END_MAGIC = b"GSKUTSBE"
TSDB_SCHEMA = "gsku-tsdb-v1"
TSDB_VERSION = 1
TSDB_HEADER_FIXED = 32
TSDB_FOOTER_SIZE = 40
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1


def fnv1a(h: int, data: bytes) -> int:
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def tsdb_name_is_volatile(name: str) -> bool:
    """Mirrors obs::tsdbSeriesIsVolatile in src/obs/timeseries.cc."""
    return (name in ("parallel.pool_threads", "parallel.stall_events")
            or name.startswith("worker.") or name.startswith("wall."))


def fail(errors: list[str], message: str) -> None:
    errors.append(message)


def load_json(path: Path, errors: list[str]):
    try:
        with path.open(encoding="utf-8") as f:
            return json.load(f)
    except json.JSONDecodeError as e:
        fail(errors, f"{path}: not valid JSON: {e}")
        return None


def validate_trace(path: Path, errors: list[str]) -> None:
    doc = load_json(path, errors)
    if doc is None:
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(errors, f"{path}: missing 'traceEvents' object key")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(errors, f"{path}: 'traceEvents' is not a list")
        return
    if not events:
        fail(errors, f"{path}: trace contains no events")
        return

    by_thread: dict[tuple, list[dict]] = {}
    for i, e in enumerate(events):
        for field in REQUIRED_EVENT_FIELDS:
            if field not in e:
                fail(errors, f"{path}: event {i} missing '{field}'")
                return
        if e["ph"] != "X":
            fail(errors, f"{path}: event {i} has ph={e['ph']!r}; the "
                         f"exporter only emits complete ('X') events")
        if e["dur"] < 0:
            fail(errors, f"{path}: event {i} ({e['name']}) has negative "
                         f"duration {e['dur']}")
        if e["ts"] < 0:
            fail(errors, f"{path}: event {i} ({e['name']}) has negative "
                         f"timestamp {e['ts']}")
        by_thread.setdefault((e["pid"], e["tid"]), []).append(e)

    # Well-nestedness per thread: sorted by (start, -duration), every
    # span must close at or before the end of the enclosing span.
    for (pid, tid), spans in by_thread.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[dict] = []
        for e in spans:
            end = e["ts"] + e["dur"]
            while stack and stack[-1]["ts"] + stack[-1]["dur"] < e["ts"]:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if end > parent_end:
                    fail(errors,
                         f"{path}: pid {pid} tid {tid}: span "
                         f"'{e['name']}' [{e['ts']}, {end}] partially "
                         f"overlaps '{stack[-1]['name']}' ending at "
                         f"{parent_end}")
            stack.append(e)


def validate_manifest(path: Path, errors: list[str],
                      require_nonzero: list[str]) -> None:
    doc = load_json(path, errors)
    if doc is None:
        return
    if not isinstance(doc, dict):
        fail(errors, f"{path}: manifest is not a JSON object")
        return
    if doc.get("schema") != "gsku-manifest-v1":
        fail(errors, f"{path}: schema is {doc.get('schema')!r}, "
                     f"expected 'gsku-manifest-v1'")
        return
    if not isinstance(doc.get("program"), str) or not doc["program"]:
        fail(errors, f"{path}: 'program' must be a non-empty string")
    for key, kind in (("config", dict), ("seeds", dict),
                      ("threads", dict), ("build", dict),
                      ("metrics", dict)):
        if not isinstance(doc.get(key), kind):
            fail(errors, f"{path}: '{key}' missing or not an object")
            return
    for key in ("gsku_threads_env", "hardware_concurrency"):
        if key not in doc["threads"]:
            fail(errors, f"{path}: threads section missing '{key}'")
    for key in ("compiler", "build_type", "contract_level",
                "sanitizers"):
        if key not in doc["build"]:
            fail(errors, f"{path}: build section missing '{key}'")
    for name, value in doc["seeds"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"{path}: seed '{name}' is not a non-negative "
                         f"integer")

    metrics = doc["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(errors,
                 f"{path}: metrics snapshot missing '{section}'")
            return
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"{path}: counter '{name}' is not a "
                         f"non-negative integer")
    for name, h in metrics["histograms"].items():
        if sum(h.get("buckets", [])) != h.get("count"):
            fail(errors, f"{path}: histogram '{name}' buckets sum to "
                         f"{sum(h.get('buckets', []))}, count says "
                         f"{h.get('count')}")

    for name in require_nonzero:
        value = metrics["counters"].get(name)
        if value is None:
            fail(errors, f"{path}: required counter '{name}' is absent "
                         f"from the metrics snapshot")
        elif value <= 0:
            fail(errors, f"{path}: required counter '{name}' is "
                         f"{value}; expected > 0")


def validate_tsdb(path: Path, errors: list[str]) -> None:
    """From-scratch parse of a gsku-tsdb-v1 file: deliberately not a
    port of the C++ reader but an independent implementation of the
    format doc in src/obs/timeseries.h, so a bug in the writer and the
    reader has to be made twice to slip through CI."""
    try:
        data = path.read_bytes()
    except OSError as e:
        fail(errors, f"{path}: cannot read: {e}")
        return
    if len(data) < TSDB_HEADER_FIXED + TSDB_FOOTER_SIZE:
        fail(errors, f"{path}: {len(data)} bytes is too small for a "
                     f"header and footer")
        return
    if data[:8] != TSDB_MAGIC:
        fail(errors, f"{path}: bad magic {data[:8]!r}")
        return
    version = int.from_bytes(data[8:12], "little")
    if version != TSDB_VERSION:
        fail(errors, f"{path}: version {version}, expected "
                     f"{TSDB_VERSION}")
        return
    header_size = int.from_bytes(data[12:16], "little")
    if (header_size < TSDB_HEADER_FIXED or header_size % 8 != 0
            or header_size > len(data) - TSDB_FOOTER_SIZE):
        fail(errors, f"{path}: bad header_size {header_size}")
        return
    sample_every = int.from_bytes(data[16:24], "little")
    if sample_every == 0:
        fail(errors, f"{path}: sample_every is 0")
    header_flags = int.from_bytes(data[24:28], "little")
    if header_flags & ~1:
        fail(errors, f"{path}: unknown header flags "
                     f"{header_flags:#x}")
    volatile_lane = bool(header_flags & 1)
    name_len = int.from_bytes(data[28:32], "little")
    if TSDB_HEADER_FIXED + name_len > header_size:
        fail(errors, f"{path}: schema name overruns the header")
        return
    name = data[TSDB_HEADER_FIXED:TSDB_HEADER_FIXED + name_len]
    if name.decode("ascii", "replace") != TSDB_SCHEMA:
        fail(errors, f"{path}: schema name {name!r}, expected "
                     f"{TSDB_SCHEMA!r}")

    if data[-8:] != TSDB_END_MAGIC:
        fail(errors, f"{path}: bad end magic at offset "
                     f"{len(data) - 8}")
        return
    frames_end = len(data) - TSDB_FOOTER_SIZE

    series: list[dict] = []
    samples = 0
    prev_clock = -1
    frames = 0
    frames_fnv = FNV_OFFSET
    off = header_size
    while off < frames_end:
        if off + 8 > frames_end:
            fail(errors, f"{path}: truncated frame header at offset "
                         f"{off}")
            return
        kind = int.from_bytes(data[off:off + 4], "little")
        payload_len = int.from_bytes(data[off + 4:off + 8], "little")
        padded = 8 + ((payload_len + 7) & ~7)
        if off + padded > frames_end:
            fail(errors, f"{path}: frame at offset {off} overruns the "
                         f"frame region (payload_len {payload_len})")
            return
        p = off + 8
        checksummed = False
        if kind == 1:
            sname_len = int.from_bytes(data[p + 6:p + 8], "little")
            if payload_len != 8 + sname_len:
                fail(errors, f"{path}: bad series-def payload at "
                             f"offset {off}")
                return
            sid = int.from_bytes(data[p:p + 4], "little")
            if sid != len(series):
                fail(errors, f"{path}: series id {sid} at offset "
                             f"{off}, expected {len(series)}")
                return
            value_type = data[p + 4]
            sflags = data[p + 5]
            if value_type > 1 or sflags > 1:
                fail(errors, f"{path}: bad series-def fields at "
                             f"offset {off}")
                return
            sname = data[p + 8:p + 8 + sname_len].decode(
                "ascii", "replace")
            is_volatile = bool(sflags & 1)
            if is_volatile != tsdb_name_is_volatile(sname):
                fail(errors,
                     f"{path}: series '{sname}' volatile flag "
                     f"{is_volatile} contradicts the name "
                     f"classification")
            if is_volatile and not volatile_lane:
                fail(errors, f"{path}: volatile series '{sname}' in a "
                             f"file whose header says the volatile "
                             f"lane is off")
            series.append({"name": sname, "volatile": is_volatile})
            checksummed = not is_volatile
        elif kind == 2:
            if payload_len != 16:
                fail(errors, f"{path}: bad sample-begin payload at "
                             f"offset {off}")
                return
            clock = int.from_bytes(data[p:p + 8], "little")
            seq = int.from_bytes(data[p + 8:p + 16], "little")
            if seq != samples:
                fail(errors, f"{path}: sample seq {seq} at offset "
                             f"{off}, expected {samples}")
                return
            if clock <= prev_clock:
                fail(errors, f"{path}: logical clock not strictly "
                             f"increasing at offset {off} ({clock} "
                             f"after {prev_clock})")
                return
            prev_clock = clock
            samples += 1
            checksummed = True
        elif kind == 3:
            if payload_len != 16:
                fail(errors, f"{path}: bad point payload at offset "
                             f"{off}")
                return
            if samples == 0:
                fail(errors, f"{path}: point before any sample at "
                             f"offset {off}")
                return
            sid = int.from_bytes(data[p:p + 4], "little")
            if int.from_bytes(data[p + 4:p + 8], "little") != 0:
                fail(errors, f"{path}: nonzero reserved point field "
                             f"at offset {off}")
            if sid >= len(series):
                fail(errors, f"{path}: point references undefined "
                             f"series {sid} at offset {off}")
                return
            checksummed = not series[sid]["volatile"]
        elif kind == 4:
            if payload_len != 8 or samples == 0:
                fail(errors, f"{path}: bad wall-clock frame at offset "
                             f"{off}")
                return
            if not volatile_lane:
                fail(errors, f"{path}: wall-clock frame at offset "
                             f"{off} in a file whose header says the "
                             f"volatile lane is off")
        else:
            fail(errors, f"{path}: unknown frame kind {kind} at "
                         f"offset {off}")
            return
        if checksummed:
            frames_fnv = fnv1a(frames_fnv, data[off:off + padded])
        frames += 1
        off += padded
    if off != frames_end:
        fail(errors, f"{path}: frames do not tile the frame region "
                     f"(ended at {off}, footer at {frames_end})")
        return

    f = frames_end
    footer_frames = int.from_bytes(data[f:f + 8], "little")
    footer_samples = int.from_bytes(data[f + 8:f + 16], "little")
    footer_frames_fnv = int.from_bytes(data[f + 16:f + 24], "little")
    footer_header_fnv = int.from_bytes(data[f + 24:f + 32], "little")
    if footer_frames != frames:
        fail(errors, f"{path}: footer frame_count {footer_frames}, "
                     f"counted {frames}")
    if footer_samples != samples:
        fail(errors, f"{path}: footer sample_count {footer_samples}, "
                     f"counted {samples}")
    if footer_frames_fnv != frames_fnv:
        fail(errors, f"{path}: frames checksum mismatch (footer "
                     f"{footer_frames_fnv:#018x}, computed "
                     f"{frames_fnv:#018x})")
    if footer_header_fnv != fnv1a(FNV_OFFSET, data[:header_size]):
        fail(errors, f"{path}: header checksum mismatch")
    if samples == 0:
        fail(errors, f"{path}: no samples (a finalized telemetry run "
                     f"writes at least the baseline sample)")


PROFILE_SCHEMA = "gsku-profile-v1"


def validate_profile(path: Path, errors: list[str]) -> None:
    """From-scratch validation of a gsku-profile-v1 work-unit profile:
    deliberately not a port of the C++ reader (common/profile_read.cc)
    but an independent implementation of the format doc in
    src/obs/profile.h, so a bug in the writer and the reader has to be
    made twice to slip through CI."""
    doc = load_json(path, errors)
    if doc is None:
        return
    if not isinstance(doc, dict):
        fail(errors, f"{path}: profile is not a JSON object")
        return
    if doc.get("schema") != PROFILE_SCHEMA:
        fail(errors, f"{path}: schema is {doc.get('schema')!r}, "
                     f"expected {PROFILE_SCHEMA!r}")
        return
    if not isinstance(doc.get("program"), str) or not doc["program"]:
        fail(errors, f"{path}: 'program' must be a non-empty string")
    wall_lane = doc.get("wall_lane")
    if not isinstance(wall_lane, bool):
        fail(errors, f"{path}: 'wall_lane' must be a boolean")
        return
    total_units = doc.get("total_units")
    if not isinstance(total_units, int) or total_units < 0:
        fail(errors, f"{path}: 'total_units' is not a non-negative "
                     f"integer")
        return
    domains = doc.get("domains")
    if not isinstance(domains, list):
        fail(errors, f"{path}: 'domains' missing or not a list")
        return

    paths: list[str] = []
    for i, e in enumerate(domains):
        if not isinstance(e, dict):
            fail(errors, f"{path}: domain {i} is not an object")
            return
        dpath = e.get("path")
        if not isinstance(dpath, str) or not dpath:
            fail(errors, f"{path}: domain {i} has no path")
            return
        paths.append(dpath)
        for key in ("self_units", "total_units", "scopes"):
            if not isinstance(e.get(key), int) or e[key] < 0:
                fail(errors, f"{path}: domain '{dpath}' field '{key}' "
                             f"is not a non-negative integer")
                return
        if wall_lane != ("wall_ns" in e):
            fail(errors, f"{path}: domain '{dpath}' "
                         f"{'misses' if wall_lane else 'carries'} "
                         f"wall_ns but the header says wall_lane="
                         f"{str(wall_lane).lower()}")
        if e["total_units"] < e["self_units"]:
            fail(errors, f"{path}: domain '{dpath}' total_units "
                         f"{e['total_units']} < self_units "
                         f"{e['self_units']}")

    if paths != sorted(paths):
        fail(errors, f"{path}: domain paths are not sorted")
    if len(set(paths)) != len(paths):
        fail(errors, f"{path}: duplicate domain paths")

    # Unit conservation: every counted unit is some domain's self
    # work, and an inner node's total is its self plus its direct
    # children's totals. "(unscoped)" is a pseudo-leaf for work ticked
    # outside any ProfileScope; it has no place in the tree.
    self_sum = sum(e["self_units"] for e in domains
                   if isinstance(e, dict))
    if self_sum != total_units:
        fail(errors, f"{path}: self units sum to {self_sum}, "
                     f"total_units says {total_units}")
    by_path = {e["path"]: e for e in domains}
    child_totals: dict[str, int] = {}
    for e in domains:
        if e["path"] == "(unscoped)":
            continue
        parent, sep, _ = e["path"].rpartition(";")
        if sep:
            child_totals[parent] = (child_totals.get(parent, 0)
                                    + e["total_units"])
            if parent not in by_path:
                fail(errors, f"{path}: domain '{e['path']}' has no "
                             f"parent entry '{parent}'")
    for e in domains:
        if e["path"] == "(unscoped)":
            if e["total_units"] != e["self_units"]:
                fail(errors, f"{path}: '(unscoped)' total_units must "
                             f"equal self_units")
            continue
        want = e["self_units"] + child_totals.get(e["path"], 0)
        if e["total_units"] != want:
            fail(errors, f"{path}: domain '{e['path']}' total_units "
                         f"{e['total_units']} != self {e['self_units']}"
                         f" + child totals "
                         f"{child_totals.get(e['path'], 0)}")

    # The checksum covers exactly the deterministic lane: sorted
    # paths, self units, scope counts — never wall_ns.
    recorded = doc.get("checksum_fnv1a64")
    if (not isinstance(recorded, str) or len(recorded) != 16
            or any(c not in "0123456789abcdef" for c in recorded)):
        fail(errors, f"{path}: 'checksum_fnv1a64' is not 16 lowercase "
                     f"hex digits")
        return
    h = FNV_OFFSET
    for e in domains:
        h = fnv1a(h, e["path"].encode("utf-8") + b"\n"
                  + e["self_units"].to_bytes(8, "little")
                  + e["scopes"].to_bytes(8, "little"))
    if f"{h:016x}" != recorded:
        fail(errors, f"{path}: checksum mismatch (file records "
                     f"{recorded}, deterministic lane hashes to "
                     f"{h:016x})")

    # The flamegraph sidecar is derived data; when present it must
    # agree with the JSON exactly.
    collapsed = path.with_name(path.name + ".collapsed")
    if collapsed.is_file():
        want_lines = [f"{e['path']} {e['self_units']}"
                      for e in domains if e["self_units"] > 0]
        got_lines = collapsed.read_text(
            encoding="utf-8").splitlines()
        if got_lines != want_lines:
            fail(errors, f"{collapsed}: collapsed stacks disagree "
                         f"with the JSON profile ({len(got_lines)} "
                         f"line(s) vs {len(want_lines)} expected)")


def validate_ledger(path: Path, errors: list[str]) -> None:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        fail(errors, f"{path}: cannot read: {e}")
        return
    if not lines:
        fail(errors, f"{path}: empty file: missing schema header line")
        return

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(errors, f"{path}: header is not valid JSON: {e}")
        return
    if header.get("schema") != LEDGER_SCHEMA:
        fail(errors, f"{path}: schema is {header.get('schema')!r}, "
                     f"expected {LEDGER_SCHEMA!r}")
        return
    body = [line for line in lines[1:] if line]
    if header.get("events") != len(body):
        fail(errors, f"{path}: header says {header.get('events')} "
                     f"events, body has {len(body)}")

    if body != sorted(body):
        fail(errors, f"{path}: event lines are not sorted (the ledger "
                     f"is a sorted set of facts)")
    if len(set(body)) != len(body):
        fail(errors, f"{path}: duplicate event lines (facts must be "
                     f"unique)")

    records = []
    for i, line in enumerate(body, start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(errors, f"{path}: line {i}: not valid JSON: {e}")
            return
        if not isinstance(rec, dict):
            fail(errors, f"{path}: line {i}: not a JSON object")
            return
        event = rec.get("event")
        if event not in LEDGER_EVENTS:
            fail(errors, f"{path}: line {i}: unknown event {event!r}")
        for key, value in rec.items():
            if not isinstance(value, (str, int, float, bool)):
                fail(errors, f"{path}: line {i}: field '{key}' is "
                             f"{type(value).__name__}; ledger facts "
                             f"are flat")
        records.append(rec)

    # Cross-references: every per-component carbon leaf must have its
    # per-core parent for the same (sku, carbon intensity).
    parents = {(r.get("sku"), r.get("ci_kg_per_kwh"))
               for r in records if r.get("event") == "carbon.per_core"}
    for r in records:
        if r.get("event") != "carbon.component":
            continue
        key = (r.get("sku"), r.get("ci_kg_per_kwh"))
        if key not in parents:
            fail(errors, f"{path}: carbon.component leaf for "
                         f"sku={key[0]!r} ci={key[1]!r} has no "
                         f"carbon.per_core parent")

    tco_parents = {r.get("sku") for r in records
                   if r.get("event") == "tco.per_core"}
    for r in records:
        if r.get("event") != "tco.component":
            continue
        if r.get("sku") not in tco_parents:
            fail(errors, f"{path}: tco.component leaf for "
                         f"sku={r.get('sku')!r} has no tco.per_core "
                         f"parent")

    # Every rejected design candidate must say which constraint bound it.
    for r in records:
        if r.get("event") != "design.verdict" or r.get("feasible"):
            continue
        if r.get("constraint") in (None, "", "none"):
            fail(errors, f"{path}: infeasible design.verdict for "
                         f"{r.get('candidate')!r} does not name its "
                         f"binding constraint")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate GreenSKU observability artifacts")
    parser.add_argument("--trace", action="append", default=[],
                        metavar="FILE",
                        help="Chrome-trace JSON file to validate")
    parser.add_argument("--manifest", action="append", default=[],
                        metavar="FILE",
                        help="run-manifest JSON file to validate")
    parser.add_argument("--ledger", action="append", default=[],
                        metavar="FILE",
                        help="decision-ledger JSONL file to validate")
    parser.add_argument("--tsdb", action="append", default=[],
                        metavar="FILE",
                        help="gsku-tsdb-v1 telemetry file to validate")
    parser.add_argument("--profile", action="append", default=[],
                        metavar="FILE",
                        help="gsku-profile-v1 work-unit profile to "
                             "validate")
    parser.add_argument("--require-nonzero", nargs="*", default=[],
                        metavar="COUNTER",
                        help="counters that must be > 0 in every "
                             "validated manifest")
    args = parser.parse_args()

    if (not args.trace and not args.manifest and not args.ledger
            and not args.tsdb and not args.profile):
        parser.error("nothing to validate: pass --trace, --manifest, "
                     "--ledger, --tsdb, and/or --profile")

    errors: list[str] = []
    checked = 0
    for name in args.trace:
        path = Path(name)
        if not path.is_file():
            print(f"validate_obs.py: no such file: {path}",
                  file=sys.stderr)
            return 2
        validate_trace(path, errors)
        checked += 1
    for name in args.manifest:
        path = Path(name)
        if not path.is_file():
            print(f"validate_obs.py: no such file: {path}",
                  file=sys.stderr)
            return 2
        validate_manifest(path, errors, args.require_nonzero)
        checked += 1
    for name in args.ledger:
        path = Path(name)
        if not path.is_file():
            print(f"validate_obs.py: no such file: {path}",
                  file=sys.stderr)
            return 2
        validate_ledger(path, errors)
        checked += 1
    for name in args.tsdb:
        path = Path(name)
        if not path.is_file():
            print(f"validate_obs.py: no such file: {path}",
                  file=sys.stderr)
            return 2
        validate_tsdb(path, errors)
        checked += 1
    for name in args.profile:
        path = Path(name)
        if not path.is_file():
            print(f"validate_obs.py: no such file: {path}",
                  file=sys.stderr)
            return 2
        validate_profile(path, errors)
        checked += 1

    for e in errors:
        print(e)
    if errors:
        print(f"\nvalidate_obs.py: {len(errors)} error(s) in {checked} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"validate_obs.py: clean ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
