#!/usr/bin/env python3
"""Validate observability artifacts: Chrome traces and run manifests.

Checks (each a hard CI gate — see docs/observability.md):

  trace     The file parses as JSON, has a ``traceEvents`` list of
            complete ("ph": "X") events with the fields Perfetto needs
            (name, cat, ts, dur, pid, tid), all durations are
            non-negative, and per-(pid, tid) the spans are well-nested
            (no partial overlaps).

  manifest  The file parses as JSON with schema ``gsku-manifest-v1``
            and carries the program name, config, seeds, threading,
            build info, and an embedded metrics snapshot
            (counters/gauges/histograms). Histogram bucket counts must
            sum to the histogram's total count.

  metrics   With ``--require-nonzero NAME...``, each named counter in
            the manifest's metrics snapshot must be present and > 0 —
            CI uses this to prove the engines actually ran through the
            instrumented paths.

  ledger    The file is a ``gsku-ledger-v1`` decision ledger
            (src/obs/ledger.h): a schema header whose event count
            matches the body, followed by flat JSONL facts with known
            event names, sorted and unique (the ledger is a *set* of
            facts). Cross-references hold: every carbon.component leaf
            has a carbon.per_core parent for the same (sku, carbon
            intensity), and every infeasible design.verdict names the
            binding constraint it violated.

Usage:
  tools/validate_obs.py [--trace trace.json]... [--manifest m.json]...
                        [--ledger ledger.jsonl]...
                        [--require-nonzero COUNTER...]

Exit status: 0 when every check passes, 1 on any failure, 2 on usage
errors (e.g. a named file is missing).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_EVENT_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")

# Mirrors kLedgerEventNames in src/obs/ledger.h (the registry of record).
LEDGER_SCHEMA = "gsku-ledger-v1"
LEDGER_EVENTS = {
    "carbon.per_core",
    "carbon.component",
    "tco.per_core",
    "tco.component",
    "adoption.decision",
    "perf.slo_margin",
    "sizing.probe",
    "sizing.result",
    "allocator.outcome",
    "design.verdict",
    "evaluator.verdict",
    "maintenance.gate",
    "cache.entry",
}


def fail(errors: list[str], message: str) -> None:
    errors.append(message)


def load_json(path: Path, errors: list[str]):
    try:
        with path.open(encoding="utf-8") as f:
            return json.load(f)
    except json.JSONDecodeError as e:
        fail(errors, f"{path}: not valid JSON: {e}")
        return None


def validate_trace(path: Path, errors: list[str]) -> None:
    doc = load_json(path, errors)
    if doc is None:
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(errors, f"{path}: missing 'traceEvents' object key")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(errors, f"{path}: 'traceEvents' is not a list")
        return
    if not events:
        fail(errors, f"{path}: trace contains no events")
        return

    by_thread: dict[tuple, list[dict]] = {}
    for i, e in enumerate(events):
        for field in REQUIRED_EVENT_FIELDS:
            if field not in e:
                fail(errors, f"{path}: event {i} missing '{field}'")
                return
        if e["ph"] != "X":
            fail(errors, f"{path}: event {i} has ph={e['ph']!r}; the "
                         f"exporter only emits complete ('X') events")
        if e["dur"] < 0:
            fail(errors, f"{path}: event {i} ({e['name']}) has negative "
                         f"duration {e['dur']}")
        if e["ts"] < 0:
            fail(errors, f"{path}: event {i} ({e['name']}) has negative "
                         f"timestamp {e['ts']}")
        by_thread.setdefault((e["pid"], e["tid"]), []).append(e)

    # Well-nestedness per thread: sorted by (start, -duration), every
    # span must close at or before the end of the enclosing span.
    for (pid, tid), spans in by_thread.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[dict] = []
        for e in spans:
            end = e["ts"] + e["dur"]
            while stack and stack[-1]["ts"] + stack[-1]["dur"] < e["ts"]:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if end > parent_end:
                    fail(errors,
                         f"{path}: pid {pid} tid {tid}: span "
                         f"'{e['name']}' [{e['ts']}, {end}] partially "
                         f"overlaps '{stack[-1]['name']}' ending at "
                         f"{parent_end}")
            stack.append(e)


def validate_manifest(path: Path, errors: list[str],
                      require_nonzero: list[str]) -> None:
    doc = load_json(path, errors)
    if doc is None:
        return
    if not isinstance(doc, dict):
        fail(errors, f"{path}: manifest is not a JSON object")
        return
    if doc.get("schema") != "gsku-manifest-v1":
        fail(errors, f"{path}: schema is {doc.get('schema')!r}, "
                     f"expected 'gsku-manifest-v1'")
        return
    if not isinstance(doc.get("program"), str) or not doc["program"]:
        fail(errors, f"{path}: 'program' must be a non-empty string")
    for key, kind in (("config", dict), ("seeds", dict),
                      ("threads", dict), ("build", dict),
                      ("metrics", dict)):
        if not isinstance(doc.get(key), kind):
            fail(errors, f"{path}: '{key}' missing or not an object")
            return
    for key in ("gsku_threads_env", "hardware_concurrency"):
        if key not in doc["threads"]:
            fail(errors, f"{path}: threads section missing '{key}'")
    for key in ("compiler", "build_type", "contract_level",
                "sanitizers"):
        if key not in doc["build"]:
            fail(errors, f"{path}: build section missing '{key}'")
    for name, value in doc["seeds"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"{path}: seed '{name}' is not a non-negative "
                         f"integer")

    metrics = doc["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(errors,
                 f"{path}: metrics snapshot missing '{section}'")
            return
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"{path}: counter '{name}' is not a "
                         f"non-negative integer")
    for name, h in metrics["histograms"].items():
        if sum(h.get("buckets", [])) != h.get("count"):
            fail(errors, f"{path}: histogram '{name}' buckets sum to "
                         f"{sum(h.get('buckets', []))}, count says "
                         f"{h.get('count')}")

    for name in require_nonzero:
        value = metrics["counters"].get(name)
        if value is None:
            fail(errors, f"{path}: required counter '{name}' is absent "
                         f"from the metrics snapshot")
        elif value <= 0:
            fail(errors, f"{path}: required counter '{name}' is "
                         f"{value}; expected > 0")


def validate_ledger(path: Path, errors: list[str]) -> None:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        fail(errors, f"{path}: cannot read: {e}")
        return
    if not lines:
        fail(errors, f"{path}: empty file: missing schema header line")
        return

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(errors, f"{path}: header is not valid JSON: {e}")
        return
    if header.get("schema") != LEDGER_SCHEMA:
        fail(errors, f"{path}: schema is {header.get('schema')!r}, "
                     f"expected {LEDGER_SCHEMA!r}")
        return
    body = [line for line in lines[1:] if line]
    if header.get("events") != len(body):
        fail(errors, f"{path}: header says {header.get('events')} "
                     f"events, body has {len(body)}")

    if body != sorted(body):
        fail(errors, f"{path}: event lines are not sorted (the ledger "
                     f"is a sorted set of facts)")
    if len(set(body)) != len(body):
        fail(errors, f"{path}: duplicate event lines (facts must be "
                     f"unique)")

    records = []
    for i, line in enumerate(body, start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(errors, f"{path}: line {i}: not valid JSON: {e}")
            return
        if not isinstance(rec, dict):
            fail(errors, f"{path}: line {i}: not a JSON object")
            return
        event = rec.get("event")
        if event not in LEDGER_EVENTS:
            fail(errors, f"{path}: line {i}: unknown event {event!r}")
        for key, value in rec.items():
            if not isinstance(value, (str, int, float, bool)):
                fail(errors, f"{path}: line {i}: field '{key}' is "
                             f"{type(value).__name__}; ledger facts "
                             f"are flat")
        records.append(rec)

    # Cross-references: every per-component carbon leaf must have its
    # per-core parent for the same (sku, carbon intensity).
    parents = {(r.get("sku"), r.get("ci_kg_per_kwh"))
               for r in records if r.get("event") == "carbon.per_core"}
    for r in records:
        if r.get("event") != "carbon.component":
            continue
        key = (r.get("sku"), r.get("ci_kg_per_kwh"))
        if key not in parents:
            fail(errors, f"{path}: carbon.component leaf for "
                         f"sku={key[0]!r} ci={key[1]!r} has no "
                         f"carbon.per_core parent")

    tco_parents = {r.get("sku") for r in records
                   if r.get("event") == "tco.per_core"}
    for r in records:
        if r.get("event") != "tco.component":
            continue
        if r.get("sku") not in tco_parents:
            fail(errors, f"{path}: tco.component leaf for "
                         f"sku={r.get('sku')!r} has no tco.per_core "
                         f"parent")

    # Every rejected design candidate must say which constraint bound it.
    for r in records:
        if r.get("event") != "design.verdict" or r.get("feasible"):
            continue
        if r.get("constraint") in (None, "", "none"):
            fail(errors, f"{path}: infeasible design.verdict for "
                         f"{r.get('candidate')!r} does not name its "
                         f"binding constraint")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate GreenSKU observability artifacts")
    parser.add_argument("--trace", action="append", default=[],
                        metavar="FILE",
                        help="Chrome-trace JSON file to validate")
    parser.add_argument("--manifest", action="append", default=[],
                        metavar="FILE",
                        help="run-manifest JSON file to validate")
    parser.add_argument("--ledger", action="append", default=[],
                        metavar="FILE",
                        help="decision-ledger JSONL file to validate")
    parser.add_argument("--require-nonzero", nargs="*", default=[],
                        metavar="COUNTER",
                        help="counters that must be > 0 in every "
                             "validated manifest")
    args = parser.parse_args()

    if not args.trace and not args.manifest and not args.ledger:
        parser.error("nothing to validate: pass --trace, --manifest, "
                     "and/or --ledger")

    errors: list[str] = []
    checked = 0
    for name in args.trace:
        path = Path(name)
        if not path.is_file():
            print(f"validate_obs.py: no such file: {path}",
                  file=sys.stderr)
            return 2
        validate_trace(path, errors)
        checked += 1
    for name in args.manifest:
        path = Path(name)
        if not path.is_file():
            print(f"validate_obs.py: no such file: {path}",
                  file=sys.stderr)
            return 2
        validate_manifest(path, errors, args.require_nonzero)
        checked += 1
    for name in args.ledger:
        path = Path(name)
        if not path.is_file():
            print(f"validate_obs.py: no such file: {path}",
                  file=sys.stderr)
            return 2
        validate_ledger(path, errors)
        checked += 1

    for e in errors:
        print(e)
    if errors:
        print(f"\nvalidate_obs.py: {len(errors)} error(s) in {checked} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"validate_obs.py: clean ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
