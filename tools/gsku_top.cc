/**
 * @file
 * gsku_top: render a `gsku-tsdb-v1` telemetry file (obs/timeseries.h)
 * as text tables or JSON — the "top" view onto a fleet-scale run.
 *
 * Usage:
 *   gsku_top [options] <run.tsdb> [baseline.tsdb]
 *
 * Options:
 *   --json           emit the parsed file as JSON instead of tables
 *   --series <name>  print the full clock/value history of one series
 *   --last <n>       rows of sample history in the default view (8)
 *   --follow         poll a growing file and print samples as they land
 *   --diff           compare two runs: needs two tsdb paths; prints a
 *                    per-series delta table and exits 1 when the
 *                    deterministic series differ (e.g. a regression in
 *                    replay event counts between two commits)
 *   --help           show usage
 *
 * Exit codes: 0 ok / identical, 1 diff found or bad usage, 2 read or
 * validation failure (the UserError text names the byte offset).
 */
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/parse.h"
#include "common/table.h"
#include "common/tsdb_read.h"

namespace {

using gsku::Align;
using gsku::Table;
using gsku::obs::TimeseriesData;
using gsku::obs::TsdbSample;
using gsku::obs::TsdbSeries;

void
printUsage(std::ostream &out)
{
    out << "usage: gsku_top [options] <run.tsdb> [baseline.tsdb]\n"
           "options:\n"
           "  --json           emit JSON instead of tables\n"
           "  --series <name>  print one series' clock/value history\n"
           "  --last <n>       sample-history rows in the default view\n"
           "  --follow         poll a growing file, print new samples\n"
           "  --diff           compare two runs (two paths required)\n"
           "  --help           show this message\n";
}

/** Render a point value according to its series' lane. */
std::string
formatValue(const TsdbSeries &series, std::uint64_t bits)
{
    if (series.is_double) {
        return Table::num(gsku::obs::tsdb::doubleOfBits(bits), 3);
    }
    return std::to_string(bits);
}

std::string
formatDouble(bool is_double, double v)
{
    if (is_double) {
        return Table::num(v, 3);
    }
    return std::to_string(static_cast<long long>(v));
}

/** First and last emitted value per series id, walking every sample. */
struct SeriesSpan
{
    bool seen = false;
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    std::size_t points = 0;
};

std::vector<SeriesSpan>
spansOf(const TimeseriesData &data)
{
    std::vector<SeriesSpan> spans(data.series.size());
    for (const TsdbSample &sample : data.samples) {
        for (const auto &point : sample.points) {
            SeriesSpan &span = spans[point.series];
            if (!span.seen) {
                span.seen = true;
                span.first = point.bits;
            }
            span.last = point.bits;
            ++span.points;
        }
    }
    return spans;
}

void
printHeaderLine(const std::string &path, const TimeseriesData &data)
{
    std::cout << "gsku_top: " << path << "  schema " << data.program
              << "  sample_every " << data.sample_every << "  samples "
              << data.samples.size()
              << (data.volatile_lane ? "  volatile-lane" : "")
              << (data.complete ? "  (complete)" : "  (growing)") << "\n\n";
}

void
renderTables(const std::string &path, const TimeseriesData &data,
             std::size_t last_rows)
{
    printHeaderLine(path, data);

    Table series_table({"Series", "Lane", "Points", "First", "Last"},
                       {Align::Left, Align::Left, Align::Right,
                        Align::Right, Align::Right});
    const std::vector<SeriesSpan> spans = spansOf(data);
    for (const TsdbSeries &series : data.series) {
        const SeriesSpan &span = spans[series.id];
        std::string lane = series.is_double ? "f64" : "u64";
        if (series.is_volatile) {
            lane += " volatile";
        }
        series_table.addRow(
            {series.name, lane, std::to_string(span.points),
             span.seen ? formatValue(series, span.first) : "-",
             span.seen ? formatValue(series, span.last) : "-"});
    }
    std::cout << series_table.render() << '\n';

    if (data.samples.empty()) {
        return;
    }
    Table history({"Sample", "Clock", "Points", "Wall (s)"},
                  {Align::Right, Align::Right, Align::Right, Align::Right});
    const std::size_t begin =
        data.samples.size() > last_rows ? data.samples.size() - last_rows
                                        : 0;
    for (std::size_t i = begin; i < data.samples.size(); ++i) {
        const TsdbSample &sample = data.samples[i];
        history.addRow({std::to_string(sample.seq),
                        std::to_string(sample.clock),
                        std::to_string(sample.points.size()),
                        sample.has_wall ? Table::num(sample.wall_seconds, 3)
                                        : "-"});
    }
    std::cout << "last " << (data.samples.size() - begin) << " samples:\n"
              << history.render();
}

int
renderSeries(const std::string &path, const TimeseriesData &data,
             const std::string &name)
{
    const TsdbSeries *series = data.findSeries(name);
    if (series == nullptr) {
        std::cerr << "gsku_top: no series '" << name << "' in " << path
                  << '\n';
        return 1;
    }
    Table history({"Clock", name},
                  {Align::Right, Align::Right});
    for (const TsdbSample &sample : data.samples) {
        for (const auto &point : sample.points) {
            if (point.series == series->id) {
                history.addRow({std::to_string(sample.clock),
                                formatValue(*series, point.bits)});
            }
        }
    }
    std::cout << history.render();
    return 0;
}

/** Minimal JSON string escaping: series names are metric identifiers,
 *  but stay correct for anything. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += "\\u0020";
        } else {
            out.push_back(c);
        }
    }
    return out;
}

void
renderJson(const TimeseriesData &data)
{
    std::cout << "{\n  \"schema\": \"" << jsonEscape(data.program)
              << "\",\n  \"sample_every\": " << data.sample_every
              << ",\n  \"volatile_lane\": "
              << (data.volatile_lane ? "true" : "false")
              << ",\n  \"complete\": " << (data.complete ? "true" : "false")
              << ",\n  \"samples\": [";
    for (std::size_t i = 0; i < data.samples.size(); ++i) {
        const TsdbSample &sample = data.samples[i];
        std::cout << (i == 0 ? "\n" : ",\n")
                  << "    {\"clock\": " << sample.clock
                  << ", \"seq\": " << sample.seq << ", \"points\": {";
        for (std::size_t p = 0; p < sample.points.size(); ++p) {
            const TsdbSeries &series = data.series[sample.points[p].series];
            std::cout << (p == 0 ? "" : ", ") << '"'
                      << jsonEscape(series.name) << "\": ";
            if (series.is_double) {
                std::cout << Table::num(gsku::obs::tsdb::doubleOfBits(
                                            sample.points[p].bits),
                                        6);
            } else {
                std::cout << sample.points[p].bits;
            }
        }
        std::cout << "}";
        if (sample.has_wall) {
            std::cout << ", \"wall_seconds\": "
                      << Table::num(sample.wall_seconds, 6);
        }
        std::cout << "}";
    }
    std::cout << "\n  ],\n  \"final\": {";
    const std::map<std::string, double> final = data.finalValues();
    bool first = true;
    for (const auto &[name, value] : final) {
        const TsdbSeries *series = data.findSeries(name);
        std::cout << (first ? "\n" : ",\n") << "    \""
                  << jsonEscape(name) << "\": "
                  << (series != nullptr && series->is_double
                          ? Table::num(value, 6)
                          : std::to_string(
                                static_cast<long long>(value)));
        first = false;
    }
    std::cout << "\n  }\n}\n";
}

/**
 * Per-series comparison of two runs' final values. Volatile series
 * (worker heartbeats, wall clock, pool shape) are shown but never
 * counted as differences: they are machine-dependent by design.
 */
int
renderDiff(const std::string &path_a, const TimeseriesData &a,
           const std::string &path_b, const TimeseriesData &b)
{
    std::cout << "gsku_top --diff\n  A: " << path_a << "  ("
              << a.samples.size() << " samples)\n  B: " << path_b << "  ("
              << b.samples.size() << " samples)\n\n";

    const std::map<std::string, double> fa = a.finalValues();
    const std::map<std::string, double> fb = b.finalValues();
    std::map<std::string, std::pair<bool, bool>> names;
    for (const auto &[name, value] : fa) {
        names[name].first = true;
    }
    for (const auto &[name, value] : fb) {
        names[name].second = true;
    }

    Table table({"Series", "A", "B", "Delta"},
                {Align::Left, Align::Right, Align::Right, Align::Right});
    int differing = 0;
    for (const auto &[name, present] : names) {
        const bool is_volatile = gsku::obs::tsdbSeriesIsVolatile(name);
        const TsdbSeries *series = a.findSeries(name);
        if (series == nullptr) {
            series = b.findSeries(name);
        }
        const bool is_double = series != nullptr && series->is_double;
        const double va = present.first ? fa.at(name) : 0.0;
        const double vb = present.second ? fb.at(name) : 0.0;
        const bool differs =
            !present.first || !present.second || va != vb;
        if (differs && !is_volatile) {
            ++differing;
        }
        std::string note;
        if (!present.first) {
            note = "only-B";
        } else if (!present.second) {
            note = "only-A";
        } else if (!differs) {
            note = "=";
        } else {
            note = formatDouble(is_double, vb - va);
            if (vb > va) {
                note = "+" + note;
            }
        }
        if (is_volatile) {
            note += " (volatile)";
        }
        table.addRow({name,
                      present.first ? formatDouble(is_double, va) : "-",
                      present.second ? formatDouble(is_double, vb) : "-",
                      note});
    }
    std::cout << table.render() << '\n';
    if (differing > 0) {
        std::cout << differing
                  << " deterministic series differ between the runs\n";
        return 1;
    }
    std::cout << "deterministic series identical between the runs\n";
    return 0;
}

/**
 * Follow a growing file: poll readTsdbTail, print each new sample as a
 * one-line summary, stop when the footer lands (writer finished).
 */
int
follow(const std::string &path)
{
    std::size_t printed = 0;
    bool announced = false;
    while (true) {
        TimeseriesData data;
        try {
            data = gsku::obs::readTsdbTail(path);
        } catch (const gsku::UserError &e) {
            std::cerr << "gsku_top: " << e.what() << '\n';
            return 2;
        }
        if (!announced) {
            printHeaderLine(path, data);
            announced = true;
        }
        for (; printed < data.samples.size(); ++printed) {
            const TsdbSample &sample = data.samples[printed];
            std::cout << "sample " << sample.seq << "  clock "
                      << sample.clock << "  points "
                      << sample.points.size();
            if (sample.has_wall) {
                std::cout << "  wall " << Table::num(sample.wall_seconds, 3)
                          << "s";
            }
            std::cout << '\n' << std::flush;
        }
        if (data.complete) {
            std::cout << "(writer finished: " << data.samples.size()
                      << " samples)\n";
            return 0;
        }
        // A growing telemetry file gains a sample every GSKU_TSDB_EVERY
        // engine events; 200 ms keeps the follower responsive without
        // hammering the filesystem.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool do_follow = false;
    bool do_diff = false;
    std::string series_name;
    std::size_t last_rows = 8;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--json") {
            json = true;
        } else if (arg == "--follow") {
            do_follow = true;
        } else if (arg == "--diff") {
            do_diff = true;
        } else if (arg == "--series") {
            if (i + 1 >= argc) {
                std::cerr << "gsku_top: --series needs a name\n";
                return 1;
            }
            series_name = argv[++i];
        } else if (arg == "--last") {
            if (i + 1 >= argc) {
                std::cerr << "gsku_top: --last needs a count\n";
                return 1;
            }
            last_rows = static_cast<std::size_t>(gsku::parseU64(
                argv[++i], gsku::ParseContext{"argv", 0, "--last"}));
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "gsku_top: unknown option " << arg << '\n';
            printUsage(std::cerr);
            return 1;
        } else {
            paths.push_back(arg);
        }
    }

    if (do_diff) {
        if (paths.size() != 2) {
            std::cerr << "gsku_top: --diff needs exactly two tsdb paths\n";
            return 1;
        }
    } else if (paths.size() != 1) {
        printUsage(std::cerr);
        return 1;
    }

    try {
        if (do_follow) {
            return follow(paths[0]);
        }
        if (do_diff) {
            const TimeseriesData a = gsku::obs::readTsdb(paths[0]);
            const TimeseriesData b = gsku::obs::readTsdb(paths[1]);
            return renderDiff(paths[0], a, paths[1], b);
        }
        const TimeseriesData data = gsku::obs::readTsdb(paths[0]);
        if (json) {
            renderJson(data);
            return 0;
        }
        if (!series_name.empty()) {
            return renderSeries(paths[0], data, series_name);
        }
        renderTables(paths[0], data, last_rows);
        return 0;
    } catch (const gsku::UserError &e) {
        std::cerr << "gsku_top: " << e.what() << '\n';
        return 2;
    }
}
