#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Rules (each a distinct class, all hard CI gates — see docs/analysis.md):

  raw-double-units  Public headers of src/carbon, src/gsf, and src/perf
                    must not pass carbon/power/energy/cost quantities as
                    raw ``double``; use the strong types in
                    src/common/units.h (Power, Energy, CarbonMass,
                    CarbonIntensity, Cost, ...). Dimensionless values
                    (fractions, shares, factors, ratios, savings) are
                    exempt.

  rng-usage         All randomness must flow through gsku::Rng
                    (src/common/rng.h). ``rand()``, ``srand()``,
                    ``std::random_device``, and the standard engines are
                    banned everywhere else: they destroy bit-for-bit
                    reproducibility across standard libraries.

  error-convention  No naked ``throw`` outside src/common/error.* and
                    src/common/contracts.*. Errors must go through
                    GSKU_REQUIRE / GSKU_ASSERT (error.h) or the contract
                    macros (contracts.h) so every exception is a
                    UserError or InternalError with file:line context.

  pragma-once       Every header under src/ starts its include guard
                    with ``#pragma once``.

  concurrency       All concurrency flows through the worker pool in
                    src/common/parallel.h (docs/performance.md). Raw
                    ``std::thread`` / ``std::jthread`` / ``std::async``
                    construction and ``.detach()`` are banned outside
                    parallel.h/.cc: one audited place for threads keeps
                    the determinism contract and the TSan surface small.
                    (``std::thread::hardware_concurrency()`` is allowed:
                    it queries, it does not spawn.)

  timing            Direct ``std::chrono`` clock reads
                    (``steady_clock::now()`` and friends) are banned
                    outside src/obs/ and bench/harness.h
                    (docs/observability.md). All timing flows through
                    obs::TraceSpan or the bench WallTimer so every
                    measurement is attributable in traces and bench
                    artifacts — and no model can accidentally become
                    wall-clock dependent.

  ledger-events     Decision-ledger event names ("carbon.per_core" and
                    friends) are string literals only inside their
                    registry, src/obs/ledger.h. Everywhere else they
                    must be spelled obs::LedgerEvent::X /
                    obs::eventName(...) so a renamed event is a compile
                    error, not a silently orphaned fact
                    (docs/observability.md).

  byte-cast         ``reinterpret_cast`` is banned outside the binary
                    trace serializer, src/cluster/trace_binary.cc — the
                    one audited home for reading objects as raw bytes
                    (the gsku-trace-v1 record codec). Everywhere else,
                    value punning goes through ``std::memcpy`` into a
                    properly-typed object, so layout and alignment
                    assumptions stay local to the serializer.

Suppress a finding by appending ``// lint-ok: <rule> <why>`` to the
offending line. Suppressions are themselves audited: an unused one is an
error, so stale escapes cannot accumulate.

This script is now a thin wrapper: when a built ``gsku_analyze``
binary is available (env var ``GSKU_ANALYZE`` or any
``build*/tools/gsku_analyze`` under the repo root) it delegates to it,
gaining the token-aware lexer, the include-layering / include-cycle
graph rules, and the determinism-taint pass (docs/analysis.md). The
pure-Python rules below are kept as a bootstrap fallback so `lint`
still runs before any build exists (e.g. the CI lint job); pass
``--no-delegate`` to force them.

Usage:
  tools/lint.py [--list-rules] [--no-delegate] [paths ...]
  (default path: src)

Exit status: 0 when clean, 1 when any finding (or stale suppression)
remains, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

# --------------------------------------------------------------------
# Shared helpers.
# --------------------------------------------------------------------

SUPPRESS_RE = re.compile(r"//\s*lint-ok:\s*([\w-]+)")

# Identifier words that imply a physical/monetary dimension.
UNIT_WORDS = {
    "carbon", "co2", "emission", "emissions", "embodied",
    "power", "watt", "watts", "tdp",
    "energy", "kwh", "kg", "joule", "joules",
    "cost", "usd", "price", "capex", "opex",
    "intensity",
}

# Words that mark a value as dimensionless even when a unit word is
# also present ("repair_carbon_fraction" is a fraction, not a mass).
DIMENSIONLESS_WORDS = {
    "fraction", "share", "shares", "ratio", "factor", "savings",
    "relative", "scale", "scaling", "normalized", "derate", "pue",
    "loss", "slowdown", "residual", "efficiency", "premium",
}

WORD_SPLIT_RE = re.compile(r"[a-z0-9]+|[A-Z][a-z0-9]*|[A-Z]+(?![a-z])")


def split_words(identifier: str) -> list[str]:
    """Split snake_case / camelCase into lowercase words."""
    return [w.lower() for w in WORD_SPLIT_RE.findall(identifier)]


RAW_STRING_OPEN_RE = re.compile(r'(?:u8|[uUL])?R"([^ ()\\\t\v\f]*)\(')


def strip_comments(line, state=False, keep_strings=False):
    """Remove comment text and (by default) literal bodies from a line.

    Returns the code portion and an opaque continuation state (open
    block comment / open raw string) to thread through successive
    lines; pass the previous return value (or False for line 1).
    Blanking string/char literal bodies keeps banned-pattern regexes
    from firing on text that merely *mentions* rand()/throw/etc. —
    the same blind-spot fix gsku_analyze makes with a real lexer.
    ledger-events passes keep_strings=True: it inspects literal
    contents on purpose.
    """
    if isinstance(state, tuple):
        in_block, raw_delim = state
    else:
        in_block, raw_delim = bool(state), None
    out = []
    i = 0
    n = len(line)
    while i < n:
        if raw_delim is not None:
            end = line.find(")" + raw_delim + '"', i)
            if end < 0:
                if keep_strings:
                    out.append(line[i:])
                return "".join(out), (in_block, raw_delim)
            if keep_strings:
                out.append(line[i:end])
            out.append('""')
            i = end + len(raw_delim) + 2
            raw_delim = None
            continue
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), (True, None)
            i = end + 2
            in_block = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        m = RAW_STRING_OPEN_RE.match(line, i)
        if m:
            raw_delim = m.group(1)
            i = m.end()
            continue
        if line[i] in "\"'":
            # A ' directly after an alphanumeric is a digit separator
            # (1'000), not a char literal.
            if (line[i] == "'" and out
                    and (out[-1][-1:].isalnum() or out[-1][-1:] == "_")):
                out.append(line[i])
                i += 1
                continue
            quote = line[i]
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                step = 2 if line[i] == "\\" else 1
                if keep_strings:
                    out.append(line[i:i + step])
                i += step
            out.append(quote)
            i += 1
            continue
        out.append(line[i])
        i += 1
    return "".join(out), (in_block, raw_delim)


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def suppressed(line: str, rule: str, used: set[tuple[Path, int]],
               path: Path, line_no: int) -> bool:
    m = SUPPRESS_RE.search(line)
    if m and m.group(1) == rule:
        used.add((path, line_no))
        return True
    return False


# --------------------------------------------------------------------
# Rule: raw-double-units
# --------------------------------------------------------------------

UNITS_DIRS = ("carbon", "gsf", "perf")

# `double identifier` (declaration, parameter, or return type + name)
# and `double>` map values followed by an identifier.
DOUBLE_DECL_RE = re.compile(r"\bdouble\s*[&*]?\s+([A-Za-z_]\w*)")
DOUBLE_MAP_RE = re.compile(r"\bdouble\s*>\s+([A-Za-z_]\w*)")


def check_raw_double_units(path: Path, lines: list[str],
                           used: set) -> list[Finding]:
    findings = []
    rel = path.as_posix()
    if path.suffix != ".h":
        return findings
    if not any(f"src/{d}/" in rel for d in UNITS_DIRS):
        return findings
    in_block = False
    for i, raw in enumerate(lines, 1):
        code, in_block = strip_comments(raw, in_block)
        if not code.strip():
            continue
        for regex in (DOUBLE_DECL_RE, DOUBLE_MAP_RE):
            for m in regex.finditer(code):
                ident = m.group(1)
                words = set(split_words(ident))
                if not words & UNIT_WORDS:
                    continue
                if words & DIMENSIONLESS_WORDS:
                    continue
                if suppressed(raw, "raw-double-units", used, path, i):
                    continue
                findings.append(Finding(
                    path, i, "raw-double-units",
                    f"'{ident}' looks dimensioned (matched: "
                    f"{', '.join(sorted(words & UNIT_WORDS))}) but is a "
                    f"raw double; use a strong type from "
                    f"common/units.h"))
    return findings


# --------------------------------------------------------------------
# Rule: rng-usage
# --------------------------------------------------------------------

RNG_ALLOWED = {"src/common/rng.h", "src/common/rng.cc"}
RNG_BANNED_RE = re.compile(
    r"(?<![\w:])(rand|srand|drand48|lrand48)\s*\(|"
    r"std::\s*(random_device|mt19937(_64)?|minstd_rand0?|"
    r"default_random_engine|knuth_b|ranlux\w+)\b")


def check_rng_usage(path: Path, lines: list[str], used: set) -> list[Finding]:
    findings = []
    if path.as_posix().replace("\\", "/").endswith(tuple(RNG_ALLOWED)):
        return findings
    in_block = False
    for i, raw in enumerate(lines, 1):
        code, in_block = strip_comments(raw, in_block)
        m = RNG_BANNED_RE.search(code)
        if not m:
            continue
        if suppressed(raw, "rng-usage", used, path, i):
            continue
        findings.append(Finding(
            path, i, "rng-usage",
            f"'{m.group(0).strip()}' breaks seeded reproducibility; "
            f"draw from gsku::Rng (common/rng.h) instead"))
    return findings


# --------------------------------------------------------------------
# Rule: error-convention
# --------------------------------------------------------------------

ERROR_ALLOWED = ("src/common/error.h", "src/common/error.cc",
                 "src/common/contracts.h", "src/common/contracts.cc")
THROW_RE = re.compile(r"(?<![\w:])throw\b(?!\s*;)")


def check_error_convention(path: Path, lines: list[str],
                           used: set) -> list[Finding]:
    findings = []
    if path.as_posix().replace("\\", "/").endswith(ERROR_ALLOWED):
        return findings
    in_block = False
    for i, raw in enumerate(lines, 1):
        code, in_block = strip_comments(raw, in_block)
        if not THROW_RE.search(code):
            continue
        if suppressed(raw, "error-convention", used, path, i):
            continue
        findings.append(Finding(
            path, i, "error-convention",
            "naked 'throw' bypasses the UserError/InternalError "
            "convention; use GSKU_REQUIRE/GSKU_ASSERT (common/error.h) "
            "or the contract macros (common/contracts.h)"))
    return findings


# --------------------------------------------------------------------
# Rule: concurrency
# --------------------------------------------------------------------

CONCURRENCY_ALLOWED = ("src/common/parallel.h", "src/common/parallel.cc")
# std::thread{...} / std::jthread / std::async spawn execution;
# `std::thread::...` statics (hardware_concurrency) only query and are
# allowed. `.detach()` orphans a thread no matter how it was made.
CONCURRENCY_BANNED_RE = re.compile(
    r"std::\s*(thread|jthread)\b(?!\s*::)|"
    r"std::\s*async\s*[(<]|"
    r"\.\s*detach\s*\(")


def check_concurrency(path: Path, lines: list[str],
                      used: set) -> list[Finding]:
    findings = []
    if path.as_posix().replace("\\", "/").endswith(CONCURRENCY_ALLOWED):
        return findings
    in_block = False
    for i, raw in enumerate(lines, 1):
        code, in_block = strip_comments(raw, in_block)
        m = CONCURRENCY_BANNED_RE.search(code)
        if not m:
            continue
        if suppressed(raw, "concurrency", used, path, i):
            continue
        findings.append(Finding(
            path, i, "concurrency",
            f"'{m.group(0).strip()}' spawns or detaches a raw thread; "
            f"route all parallelism through the worker pool in "
            f"common/parallel.h (docs/performance.md)"))
    return findings


# --------------------------------------------------------------------
# Rule: timing
# --------------------------------------------------------------------

# src/obs/ covers every sanctioned clock consumer: trace spans,
# telemetry sampling, heartbeats, and the work-unit profiler's
# volatile wall lane (src/obs/profile.cc).
TIMING_ALLOWED_DIRS = ("src/obs/",)
TIMING_ALLOWED_FILES = ("bench/harness.h",)
TIMING_BANNED_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now"
    r"\s*\(")


def check_timing(path: Path, lines: list[str], used: set) -> list[Finding]:
    findings = []
    rel = path.as_posix().replace("\\", "/")
    if any(f"/{d}" in f"/{rel}" for d in TIMING_ALLOWED_DIRS):
        return findings
    if rel.endswith(TIMING_ALLOWED_FILES):
        return findings
    in_block = False
    for i, raw in enumerate(lines, 1):
        code, in_block = strip_comments(raw, in_block)
        m = TIMING_BANNED_RE.search(code)
        if not m:
            continue
        if suppressed(raw, "timing", used, path, i):
            continue
        findings.append(Finding(
            path, i, "timing",
            f"'{m.group(0).strip()}' reads a clock directly; time "
            f"through obs::TraceSpan (src/obs/trace.h) or the bench "
            f"WallTimer (bench/harness.h) so timing stays attributable "
            f"(docs/observability.md)"))
    return findings


# --------------------------------------------------------------------
# Rule: ledger-events
# --------------------------------------------------------------------

LEDGER_ALLOWED = ("src/obs/ledger.h",)
# Mirrors kLedgerEventNames in src/obs/ledger.h (the registry of
# record); obs_ledger_test pins that the two stay in sync.
LEDGER_EVENT_NAMES = (
    "carbon.per_core", "carbon.component",
    "tco.per_core", "tco.component",
    "adoption.decision", "perf.slo_margin",
    "sizing.probe", "sizing.result",
    "allocator.outcome", "design.verdict",
    "evaluator.verdict", "maintenance.gate",
    "cache.entry", "search.move",
)
LEDGER_EVENTS_RE = re.compile(
    '"(' + "|".join(re.escape(n) for n in LEDGER_EVENT_NAMES) + ')"')


def check_ledger_events(path: Path, lines: list[str],
                        used: set) -> list[Finding]:
    findings = []
    if path.as_posix().replace("\\", "/").endswith(LEDGER_ALLOWED):
        return findings
    in_block = False
    for i, raw in enumerate(lines, 1):
        code, in_block = strip_comments(raw, in_block, keep_strings=True)
        m = LEDGER_EVENTS_RE.search(code)
        if not m:
            continue
        if suppressed(raw, "ledger-events", used, path, i):
            continue
        findings.append(Finding(
            path, i, "ledger-events",
            f"ledger event name {m.group(0)} as a string literal; use "
            f"obs::LedgerEvent / obs::eventName (src/obs/ledger.h) so "
            f"renames cannot orphan facts"))
    return findings


# --------------------------------------------------------------------
# Rule: checked-parse
#
# Raw std::sto* / ato* / strto* conversions have two failure modes
# that bit the readers: they throw raw std::invalid_argument past the
# UserError convention, and they silently accept trailing junk
# ("12abc" parses as 12). All text->number conversion goes through the
# checked full-token parsers in common/parse.h, which reject both and
# carry file/line/field context. Only parse.cc itself may call the
# std library (with suppressions).
# --------------------------------------------------------------------

CHECKED_PARSE_RE = re.compile(
    r"\b(?:std::)?(?:stoi|stol|stoll|stoul|stoull|stof|stod|stold|"
    r"atoi|atol|atoll|atof|strtol|strtoll|strtoul|strtoull|strtof|"
    r"strtod|strtold)\s*\(")


def check_checked_parse(path: Path, lines: list[str],
                        used: set) -> list[Finding]:
    findings = []
    in_block = False
    for i, raw in enumerate(lines, 1):
        code, in_block = strip_comments(raw, in_block)
        m = CHECKED_PARSE_RE.search(code)
        if not m:
            continue
        if suppressed(raw, "checked-parse", used, path, i):
            continue
        findings.append(Finding(
            path, i, "checked-parse",
            f"'{m.group(0).strip()}' is a raw numeric conversion; use "
            f"parseInt/parseLong/parseU64/parseDouble (common/parse.h) "
            f"so malformed and trailing-junk tokens fail as UserError "
            f"with source context"))
    return findings


# --------------------------------------------------------------------
# Rule: byte-cast
# --------------------------------------------------------------------

BYTE_CAST_ALLOWED = ("src/cluster/trace_binary.cc",)
BYTE_CAST_RE = re.compile(r"\breinterpret_cast\b")


def check_byte_cast(path: Path, lines: list[str],
                    used: set) -> list[Finding]:
    findings = []
    if path.as_posix().replace("\\", "/").endswith(BYTE_CAST_ALLOWED):
        return findings
    in_block = False
    for i, raw in enumerate(lines, 1):
        code, in_block = strip_comments(raw, in_block)
        if not BYTE_CAST_RE.search(code):
            continue
        if suppressed(raw, "byte-cast", used, path, i):
            continue
        findings.append(Finding(
            path, i, "byte-cast",
            "'reinterpret_cast' reinterprets object bytes; raw byte "
            "casts live only in the binary trace serializer "
            "(src/cluster/trace_binary.cc) — use std::memcpy into a "
            "typed value instead"))
    return findings


# --------------------------------------------------------------------
# Rule: pragma-once
# --------------------------------------------------------------------

def check_pragma_once(path: Path, lines: list[str],
                      used: set) -> list[Finding]:
    if path.suffix != ".h":
        return []
    for raw in lines:
        if raw.strip() == "#pragma once":
            return []
        if suppressed(raw, "pragma-once", used, path, 1):
            return []
    return [Finding(path, 1, "pragma-once",
                    "header is missing '#pragma once'")]


# --------------------------------------------------------------------
# Rule: sigsafe
# --------------------------------------------------------------------

# Identifiers banned in the crash flight-recorder dump TU. Mirrors
# kSigUnsafe in src/analyze/rules.cc; the handler runs inside a signal
# so it may only use raw syscalls, lock-free atomics, and fixed-buffer
# formatting (src/obs/flightrec_state.h). `_exit` is fine — it is a
# different word from `exit` and skips atexit handlers.
SIGSAFE_BANNED = (
    "new", "delete", "malloc", "calloc", "realloc", "free",
    "printf", "fprintf", "sprintf", "snprintf", "vsnprintf",
    "puts", "fputs", "fwrite", "fopen",
    "cout", "cerr", "clog", "ostringstream", "stringstream",
    "string", "vector", "map",
    "mutex", "lock_guard", "unique_lock", "condition_variable",
    "exit", "throw",
)

SIGSAFE_RE = re.compile(
    r"\b(" + "|".join(SIGSAFE_BANNED) + r")\b")


def check_sigsafe(path: Path, lines: list[str],
                  used: set) -> list[Finding]:
    posix = path.as_posix()
    if "src/obs/" not in posix and not posix.startswith("obs/"):
        return []
    if not path.name.startswith("flightrec_handler"):
        return []
    findings = []
    state = False
    for i, raw in enumerate(lines, 1):
        code, state = strip_comments(raw, state)
        hits = sorted({m.group(1) for m in SIGSAFE_RE.finditer(code)})
        if not hits:
            continue
        if suppressed(raw, "sigsafe", used, path, i):
            continue
        for name in hits:
            findings.append(Finding(
                path, i, "sigsafe",
                f"'{name}' is not async-signal-safe; the crash-handler "
                f"TU allows only raw write/open/close/rename/raise, "
                f"lock-free atomics, and fixed-buffer formatting "
                f"(src/obs/flightrec_state.h)"))
    return findings


# --------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------

RULES = {
    "raw-double-units": check_raw_double_units,
    "rng-usage": check_rng_usage,
    "error-convention": check_error_convention,
    "concurrency": check_concurrency,
    "timing": check_timing,
    "ledger-events": check_ledger_events,
    "checked-parse": check_checked_parse,
    "byte-cast": check_byte_cast,
    "pragma-once": check_pragma_once,
    "sigsafe": check_sigsafe,
}

# Rules implemented only by the gsku_analyze binary.
BINARY_ONLY_RULES = {"include-layering", "include-cycle",
                     "determinism-taint"}


def lint_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(path, 0, "io", f"cannot read file: {e}")]
    lines = text.splitlines()

    used: set[tuple[Path, int]] = set()
    findings: list[Finding] = []
    for rule in RULES.values():
        findings.extend(rule(path, lines, used))

    # Audit suppressions: every `// lint-ok:` must have silenced
    # something, or it is stale and must be removed. Rules that only
    # exist in the gsku_analyze binary (graph and taint passes) cannot
    # be evaluated here, so their suppressions are taken on trust; the
    # binary audits them for real.
    for i, raw in enumerate(lines, 1):
        m = SUPPRESS_RE.search(raw)
        if not m:
            continue
        if m.group(1) in BINARY_ONLY_RULES:
            continue
        if m.group(1) not in RULES:
            findings.append(Finding(
                path, i, "lint-ok",
                f"suppression names unknown rule '{m.group(1)}'"))
        elif (path, i) not in used:
            findings.append(Finding(
                path, i, "lint-ok",
                f"stale suppression: no '{m.group(1)}' finding on "
                f"this line"))
    return findings


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.h")))
            files.extend(sorted(path.rglob("*.cc")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


REPO_ROOT = Path(__file__).resolve().parent.parent


def find_analyzer() -> Path | None:
    """Locate a built gsku_analyze binary, or None for pure-Python mode.

    ``GSKU_ANALYZE`` wins (empty string disables delegation outright);
    otherwise pick the newest ``build*/tools/gsku_analyze`` under the
    repo root, so an incremental rebuild in any build dir is honored.
    """
    env = os.environ.get("GSKU_ANALYZE")
    if env is not None:
        if not env:
            return None
        path = Path(env)
        return path if path.is_file() and os.access(path, os.X_OK) else None
    candidates = [
        p for p in REPO_ROOT.glob("build*/tools/gsku_analyze")
        if p.is_file() and os.access(p, os.X_OK)
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def delegate(binary: Path, args: argparse.Namespace) -> int:
    """Run gsku_analyze with translated arguments; exit codes match."""
    cmd = [str(binary), "--root", str(REPO_ROOT)]
    if args.list_rules:
        cmd.append("--list-rules")
    else:
        cmd.extend(str(Path(p).resolve()) for p in (args.paths or ["src"]))
    return subprocess.run(cmd).returncode


def main() -> int:
    parser = argparse.ArgumentParser(
        description="GreenSKU repo-invariant linter")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    parser.add_argument("--no-delegate", action="store_true",
                        help="skip the gsku_analyze binary and run the "
                             "pure-Python fallback rules")
    args = parser.parse_args()

    if not args.no_delegate:
        binary = find_analyzer()
        if binary is not None:
            return delegate(binary, args)

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0

    findings: list[Finding] = []
    files = collect_files(args.paths or ["src"])
    for path in files:
        findings.extend(lint_file(path))

    for f in findings:
        print(f)
    if findings:
        print(f"\nlint.py: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint.py: clean ({len(files)} files, "
          f"{len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
