/**
 * @file
 * Command-line SKU evaluator: run the full GSF pipeline on a SKU given
 * as a compact spec string — design-space exploration from a shell.
 *
 * Usage:
 *   sku_eval_cli [options] "<spec>" [carbon_intensity]
 *   sku_eval_cli                       # evaluates GreenSKU-Full
 *
 * Options: the shared observability flags (see examples/obs_flags.h:
 * --metrics, --trace, --ledger, --tsdb, --flight, --profile), plus
 *   --eval-cache <dir>  persist evaluation results under <dir> and
 *                       reuse them on later runs (same as setting
 *                       GSKU_EVAL_CACHE)
 *   --help              show usage
 *
 * Examples:
 *   sku_eval_cli "cpu=bergamo ddr5=12x64 cxl_ddr4=8x32 ssd=2x4 reused_ssd=12x1"
 *   sku_eval_cli "cpu=bergamo lpddr=12x96 ssd=5x4 nic=reused" 0.35
 */
#include <cstdlib>
#include <iostream>
#include <vector>

#include "carbon/model.h"
#include "carbon/sku_parser.h"
#include "cluster/trace_gen.h"
#include "common/error.h"
#include "common/parse.h"
#include "common/table.h"
#include "obs_flags.h"
#include "gsf/eval_cache.h"
#include "gsf/evaluator.h"
#include "gsf/tiering.h"
#include "obs/metrics.h"

namespace {

void
printUsage(std::ostream &out)
{
    out << "usage: sku_eval_cli [options] [\"<spec>\"] "
           "[carbon_intensity]\n"
           "options:\n";
    gsku::examples::printObsFlagsHelp(out);
    out << "  --eval-cache <dir>  persist evaluation results under "
           "<dir> (same as GSKU_EVAL_CACHE)\n"
           "  --help              show this message\n"
           "spec example:\n"
           "  \"cpu=bergamo ddr5=12x64 cxl_ddr4=8x32 ssd=2x4 "
           "reused_ssd=12x1\"\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gsku;

    examples::ObsOptions obs_opts =
        examples::parseObsOptions(argc, argv, "sku_eval_cli");
    if (!obs_opts.error.empty()) {
        std::cerr << obs_opts.error << '\n';
        return 1;
    }
    std::vector<std::string> positional;
    for (std::size_t i = 0; i < obs_opts.remaining.size(); ++i) {
        const std::string &arg = obs_opts.remaining[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--eval-cache") {
            if (i + 1 >= obs_opts.remaining.size()) {
                std::cerr
                    << "sku_eval_cli: --eval-cache needs a directory\n";
                return 1;
            }
            gsf::configureEvalCache(obs_opts.remaining[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "sku_eval_cli: unknown option " << arg << '\n';
            printUsage(std::cerr);
            return 1;
        } else {
            positional.push_back(arg);
        }
    }
    examples::applyObsOptions(obs_opts);
    obs::metrics().reset();

    const std::string spec =
        !positional.empty() ? positional[0]
                            : "name=GreenSKU-Full cpu=bergamo ddr5=12x64 "
                              "cxl_ddr4=8x32 ssd=2x4 reused_ssd=12x1";
    const double ci_value =
        positional.size() > 1
            ? parseDouble(positional[1],
                          ParseContext{"argv", 0, "carbon intensity"})
            : 0.1;

    carbon::ServerSku sku;
    try {
        sku = carbon::parseSku(spec);
    } catch (const UserError &e) {
        std::cerr << "bad spec: " << e.what() << '\n';
        return 1;
    }
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(ci_value);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();

    const carbon::CarbonModel carbon;
    const carbon::RackFootprint rack = carbon.rackFootprint(sku);
    const carbon::PerCoreEmissions pc = carbon.perCore(sku, ci);
    const carbon::PerCoreEmissions base_pc = carbon.perCore(baseline, ci);

    std::cout << "SKU: " << sku.name << "\n"
              << "  " << carbon::formatSku(sku) << "\n\n";

    Table summary({"Metric", "Value", "Baseline"},
                  {Align::Left, Align::Right, Align::Right});
    summary.addRow({"Cores", std::to_string(sku.cores),
                    std::to_string(baseline.cores)});
    summary.addRow({"Memory (GB, local+CXL)",
                    Table::num(sku.totalMemory().asGb(), 0),
                    Table::num(baseline.totalMemory().asGb(), 0)});
    summary.addRow({"Server power (W)",
                    Table::num(rack.server_power.asWatts(), 0),
                    Table::num(carbon.serverPower(baseline).asWatts(),
                               0)});
    summary.addRow({"Server embodied (kgCO2e)",
                    Table::num(carbon.serverEmbodied(sku).asKg(), 0),
                    Table::num(carbon.serverEmbodied(baseline).asKg(),
                               0)});
    summary.addRow({"Servers per rack",
                    std::to_string(rack.servers_per_rack), "16"});
    summary.addRow({"CO2e per core (kg, lifetime)",
                    Table::num(pc.total().asKg(), 1),
                    Table::num(base_pc.total().asKg(), 1)});
    summary.addRow({"Per-core savings",
                    Table::percent(1.0 - pc.total() / base_pc.total(), 1),
                    "-"});
    std::cout << summary.render() << '\n';

    if (sku.cxlMemoryFraction() > 0.0) {
        const gsf::MemoryTieringPolicy tiering;
        std::cout << "CXL tiering: "
                  << Table::percent(
                         tiering.fleetShareBelowSlowdown(sku), 1)
                  << " of fleet core-hours stay under 5% slowdown\n\n";
    }

    // Observability epilogue shared by both exit paths.
    auto finish = [&]() -> int {
        return examples::finishObsOptions(obs_opts, "sku_eval_cli");
    };

    if (sku.generation != carbon::Generation::GreenSku) {
        std::cout << "(cluster evaluation needs a Bergamo-based GreenSKU "
                     "spec; skipping)\n";
        return finish();
    }

    cluster::TraceGenParams params;
    params.target_concurrent_vms = 250.0;
    params.duration_h = 24.0 * 14.0;
    const cluster::VmTrace trace =
        cluster::TraceGenerator(params).generate(3);

    const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};
    const auto eval =
        evaluator.evaluateCluster(trace, baseline, sku, ci);
    std::cout << "Cluster evaluation at CI = " << Table::num(ci_value, 2)
              << " kg/kWh: all-baseline "
              << eval.sizing.baseline_only_servers << " servers vs mixed "
              << eval.sizing.mixed_baselines << "+"
              << eval.sizing.mixed_greens << " -> savings "
              << Table::percent(eval.savings, 1) << '\n';
    return finish();
}
