/**
 * @file
 * Trace format converter: moves VM traces between the CSV text format
 * (trace_io.h) and the mmap-able `gsku-trace-v1` binary format
 * (trace_binary.h). The input format is sniffed from the file's magic
 * bytes, so conversion direction never needs to be spelled out; both
 * directions preserve the semantic content digest, which `--verify`
 * re-reads the output to prove.
 *
 * Usage:
 *   trace_convert [options] <input> <output>
 *
 *   --name <name>       trace name for legacy CSVs without a metadata
 *                       line (default: csv)
 *   --verify            re-read the output and require its content
 *                       digest to match the input's
 *   --self-test         run a built-in round-trip check and exit
 *   --help              show this message
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/trace_binary.h"
#include "cluster/trace_gen.h"
#include "cluster/trace_io.h"
#include "common/error.h"
#include "obs_flags.h"

namespace {

void
printUsage(std::ostream &out)
{
    out << "usage: trace_convert [options] <input> <output>\n"
           "\n"
           "Converts between the trace CSV format and the binary\n"
           "gsku-trace-v1 format (direction inferred from the input's\n"
           "magic bytes).\n"
           "\n"
           "  --name <name>   trace name for legacy CSVs without a\n"
           "                  metadata line (default: csv)\n"
           "  --verify        re-read the output and require digest\n"
           "                  equality with the input\n"
           "  --self-test     run a built-in round-trip check and exit\n"
           "  --help          show this message\n";
    gsku::examples::printObsFlagsHelp(out);
}

bool
isBinaryTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    GSKU_REQUIRE(in.is_open(), "cannot open '" + path + "'");
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic) &&
           std::string(magic, sizeof(magic)) == "GSKUTRC1";
}

gsku::cluster::VmTrace
readAny(const std::string &path, const std::string &fallback_name)
{
    using namespace gsku::cluster;
    if (isBinaryTrace(path)) {
        return readTraceBinary(path);
    }
    std::ifstream in(path);
    GSKU_REQUIRE(in.is_open(), "cannot open '" + path + "'");
    return readTraceCsv(in, fallback_name);
}

void
writeAs(const gsku::cluster::VmTrace &trace, const std::string &path,
        bool binary)
{
    using namespace gsku::cluster;
    if (binary) {
        writeTraceBinary(trace, path);
        return;
    }
    std::ofstream out(path, std::ios::trunc);
    GSKU_REQUIRE(out.is_open(), "cannot write '" + path + "'");
    writeTraceCsv(trace, out);
    GSKU_REQUIRE(out.good(), "failed to write '" + path + "'");
}

int
selfTest()
{
    using namespace gsku::cluster;
    TraceGenParams params;
    params.duration_h = 24.0 * 7.0;
    params.target_concurrent_vms = 60.0;
    const VmTrace trace = TraceGenerator(params).generate(11);

    const std::string bin1 = "trace_convert_selftest_1.gskutrc";
    const std::string csv = "trace_convert_selftest.csv";
    const std::string bin2 = "trace_convert_selftest_2.gskutrc";

    writeTraceBinary(trace, bin1);
    writeAs(readTraceBinary(bin1), csv, /*binary=*/false);
    writeAs(readAny(csv, "csv"), bin2, /*binary=*/true);

    BinaryTraceReader first(bin1);
    BinaryTraceReader second(bin2);
    const bool ok = first.contentDigest() == second.contentDigest() &&
                    first.contentDigest() == traceContentDigest(trace) &&
                    first.sizeHint() == second.sizeHint();
    std::remove(bin1.c_str());
    std::remove(csv.c_str());
    std::remove(bin2.c_str());
    if (!ok) {
        std::cerr << "trace_convert: SELF-TEST FAILED — round trip "
                     "changed the trace content digest\n";
        return 1;
    }
    std::cout << "trace_convert: self-test passed ("
              << trace.vms.size()
              << " VMs round-tripped binary -> CSV -> binary with a "
                 "stable content digest)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gsku;
    using namespace gsku::cluster;

    examples::ObsOptions obs_opts =
        examples::parseObsOptions(argc, argv, "trace_convert");
    if (!obs_opts.error.empty()) {
        std::cerr << obs_opts.error << '\n';
        return 1;
    }

    std::string fallback_name = "csv";
    bool verify = false;
    bool self_test = false;
    std::vector<std::string> positional;
    const std::vector<std::string> &args = obs_opts.remaining;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--self-test") {
            self_test = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--name") {
            if (i + 1 >= args.size()) {
                std::cerr << "trace_convert: --name needs a value\n";
                return 1;
            }
            fallback_name = args[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "trace_convert: unknown option " << arg << '\n';
            printUsage(std::cerr);
            return 1;
        } else {
            positional.push_back(arg);
        }
    }
    examples::applyObsOptions(obs_opts);
    if (self_test) {
        const int rc = selfTest();
        const int obs_rc =
            examples::finishObsOptions(obs_opts, "trace_convert");
        return rc != 0 ? rc : obs_rc;
    }
    if (positional.size() != 2) {
        // No arguments: the smoke-test invocation runs the self-test
        // so `ctest` exercises the converter without fixture files.
        if (positional.empty() && !verify) {
            const int rc = selfTest();
            const int obs_rc =
                examples::finishObsOptions(obs_opts, "trace_convert");
            return rc != 0 ? rc : obs_rc;
        }
        std::cerr << "trace_convert: need exactly <input> <output>\n";
        printUsage(std::cerr);
        return 1;
    }

    try {
        const std::string &input = positional[0];
        const std::string &output = positional[1];
        const bool in_binary = isBinaryTrace(input);
        const VmTrace trace = readAny(input, fallback_name);
        const std::uint64_t digest = traceContentDigest(trace);
        writeAs(trace, output, /*binary=*/!in_binary);

        std::cout << "trace_convert: " << trace.vms.size() << " VMs ("
                  << (in_binary ? "binary -> CSV" : "CSV -> binary")
                  << ") " << input << " -> " << output << '\n';

        if (verify) {
            const VmTrace back = readAny(output, trace.name);
            if (traceContentDigest(back) != digest) {
                std::cerr << "trace_convert: VERIFY FAILED — output "
                             "content digest differs from input\n";
                return 1;
            }
            std::cout << "trace_convert: verified — round trip "
                         "preserves the content digest\n";
        }
        return examples::finishObsOptions(obs_opts, "trace_convert");
    } catch (const UserError &e) {
        std::cerr << "trace_convert: " << e.what() << '\n';
        return 1;
    }
}
