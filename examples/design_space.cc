/**
 * @file
 * Design-space exploration (§VIII "Navigating component search space"):
 * iterate through hundreds of GreenSKU configurations with the library's
 * DesignSpaceExplorer — CPU fixed to Bergamo, DDR5/reused-DDR4/new- and
 * reused-SSD counts enumerated, deployability constraints applied — and
 * print the lowest-carbon designs.
 *
 * This mirrors how the authors "used parts of GSF to iterate through
 * hundreds of configurations" when designing the prototypes.
 *
 * Options:
 *   --metrics           print the metrics snapshot after the exploration
 *   --trace <path>      record a Chrome-trace of the run to <path>
 *   --eval-cache <dir>  persist exploration results under <dir> and
 *                       reuse them on later runs (same as setting
 *                       GSKU_EVAL_CACHE)
 *   --help              show usage
 */
#include <iostream>
#include <string>

#include "carbon/model.h"
#include "common/table.h"
#include "gsf/design_space.h"
#include "gsf/eval_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int
main(int argc, char **argv)
{
    using namespace gsku;
    using namespace gsku::gsf;

    bool show_metrics = false;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: design_space [--metrics] "
                         "[--trace <path>] [--eval-cache <dir>]\n"
                         "  --metrics           print the metrics "
                         "snapshot after the exploration\n"
                         "  --trace <path>      record a Chrome-trace of "
                         "the run to <path>\n"
                         "  --eval-cache <dir>  persist exploration "
                         "results under <dir> (same as GSKU_EVAL_CACHE)\n"
                         "  --help              show this message\n";
            return 0;
        }
        if (arg == "--metrics") {
            show_metrics = true;
        } else if (arg == "--trace") {
            if (i + 1 >= argc) {
                std::cerr << "design_space: --trace needs a path\n";
                return 1;
            }
            trace_path = argv[++i];
        } else if (arg == "--eval-cache") {
            if (i + 1 >= argc) {
                std::cerr
                    << "design_space: --eval-cache needs a directory\n";
                return 1;
            }
            configureEvalCache(argv[++i]);
        } else {
            std::cerr << "design_space: unknown argument " << arg
                      << '\n';
            return 1;
        }
    }
    if (!trace_path.empty()) {
        obs::startTrace();
    }
    obs::metrics().reset();

    const carbon::CarbonModel model;
    const DesignSpaceExplorer explorer(model);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();

    long considered = 0;
    const auto designs = explorer.explore(baseline, {}, &considered);

    std::cout << "Design-space exploration: " << considered
              << " configurations considered, " << designs.size()
              << " deployable\n\n";

    Table table({"Rank", "Configuration", "GB/core", "Op save", "Emb save",
                 "Total save"},
                {Align::Right, Align::Left, Align::Right, Align::Right,
                 Align::Right, Align::Right});
    for (std::size_t i = 0; i < std::min<std::size_t>(10, designs.size());
         ++i) {
        const RankedDesign &d = designs[i];
        table.addRow({std::to_string(i + 1), d.sku.name,
                      Table::num(d.sku.memoryPerCore(), 1),
                      Table::percent(d.savings.operational_savings, 1),
                      Table::percent(d.savings.embodied_savings, 1),
                      Table::percent(d.savings.total_savings, 1)});
    }
    std::cout << table.render() << '\n';

    // Where does the paper's GreenSKU-Full rank?
    const carbon::SavingsRow paper_full =
        model.savingsVs(baseline, carbon::StandardSkus::greenFull());
    const std::size_t rank =
        DesignSpaceExplorer::rankOf(designs, paper_full);
    std::cout << "The paper's GreenSKU-Full ("
              << Table::percent(paper_full.total_savings, 1)
              << " total savings) ranks #" << rank << " of "
              << designs.size()
              << " — near-optimal, as §VIII anticipates (\"may not be "
                 "the optimal configuration\").\n";

    if (show_metrics) {
        std::cout << "\nMetrics snapshot:\n"
                  << obs::metrics().snapshot().toText();
    }
    if (!trace_path.empty() && !obs::writeTrace(trace_path)) {
        std::cerr << "design_space: failed to write " << trace_path
                  << '\n';
        return 2;
    }
    return 0;
}
