/**
 * @file
 * Design-space exploration (§VIII "Navigating component search space"):
 * iterate through hundreds of GreenSKU configurations with the library's
 * DesignSpaceExplorer — CPU fixed to Bergamo, DDR5/reused-DDR4/new- and
 * reused-SSD counts enumerated, deployability constraints applied — and
 * print the lowest-carbon designs.
 *
 * This mirrors how the authors "used parts of GSF to iterate through
 * hundreds of configurations" when designing the prototypes.
 */
#include <iostream>

#include "carbon/model.h"
#include "common/table.h"
#include "gsf/design_space.h"

int
main()
{
    using namespace gsku;
    using namespace gsku::gsf;

    const carbon::CarbonModel model;
    const DesignSpaceExplorer explorer(model);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();

    long considered = 0;
    const auto designs = explorer.explore(baseline, {}, &considered);

    std::cout << "Design-space exploration: " << considered
              << " configurations considered, " << designs.size()
              << " deployable\n\n";

    Table table({"Rank", "Configuration", "GB/core", "Op save", "Emb save",
                 "Total save"},
                {Align::Right, Align::Left, Align::Right, Align::Right,
                 Align::Right, Align::Right});
    for (std::size_t i = 0; i < std::min<std::size_t>(10, designs.size());
         ++i) {
        const RankedDesign &d = designs[i];
        table.addRow({std::to_string(i + 1), d.sku.name,
                      Table::num(d.sku.memoryPerCore(), 1),
                      Table::percent(d.savings.operational_savings, 1),
                      Table::percent(d.savings.embodied_savings, 1),
                      Table::percent(d.savings.total_savings, 1)});
    }
    std::cout << table.render() << '\n';

    // Where does the paper's GreenSKU-Full rank?
    const carbon::SavingsRow paper_full =
        model.savingsVs(baseline, carbon::StandardSkus::greenFull());
    const std::size_t rank =
        DesignSpaceExplorer::rankOf(designs, paper_full);
    std::cout << "The paper's GreenSKU-Full ("
              << Table::percent(paper_full.total_savings, 1)
              << " total savings) ranks #" << rank << " of "
              << designs.size()
              << " — near-optimal, as §VIII anticipates (\"may not be "
                 "the optimal configuration\").\n";
    return 0;
}
