/**
 * @file
 * gsku_explain: answer "why does this SKU score what it scores?" from a
 * decision-provenance ledger (obs/ledger.h, docs/observability.md).
 *
 * Usage:
 *   gsku_explain [options] --why <sku>
 *   gsku_explain [options] --compare <skuA> <skuB>
 *   gsku_explain --diff <ledgerA> <ledgerB>
 *   gsku_explain                       # demo: --why GreenSKU-Full
 *
 * Options:
 *   --ledger <path>  answer from a recorded ledger (e.g. a run under
 *                    GSKU_LEDGER=<path>) instead of running the demo
 *                    evaluation in-process
 *   --record <path>  write the demo run's ledger to <path>
 *   --ci <value>     demo-run carbon intensity in kg/kWh (default 0.1)
 *   --metrics        print the metrics snapshot at exit
 *   --trace <path>   record a Chrome-trace of the run to <path>
 *
 * Exit codes: 0 success; 1 query failed (unknown SKU, leaf-sum check
 * failure, parse error); for --diff, 1 also means the ledgers differ
 * (like diff(1)).
 */
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "cluster/trace_gen.h"
#include "common/parse.h"
#include "gsf/evaluator.h"
#include "gsf/tco.h"
#include "obs/explain.h"
#include "obs/ledger.h"
#include "obs_flags.h"

namespace {

void
printUsage(std::ostream &out)
{
    out << "usage: gsku_explain [options] --why <sku>\n"
           "       gsku_explain [options] --compare <skuA> <skuB>\n"
           "       gsku_explain --diff <ledgerA> <ledgerB>\n"
           "options:\n"
           "  --ledger <path>  answer from a recorded ledger instead of\n"
           "                   running the demo evaluation in-process\n"
           "  --record <path>  write the demo run's ledger to <path>\n"
           "  --ci <value>     demo carbon intensity, kg/kWh "
           "(default 0.1)\n"
           "  --metrics        print the metrics snapshot at exit\n"
           "  --trace <path>   record a Chrome-trace of the run\n";
}

/**
 * Record a demo ledger in-process: per-core carbon and cost for every
 * standard SKU, plus one full cluster evaluation of GreenSKU-Full (which
 * exercises adoption, SLO margins, sizing, allocation, and maintenance).
 */
void
recordDemo(double ci_value)
{
    using namespace gsku;
    gsku::obs::startLedger();

    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(ci_value);
    const std::vector<carbon::ServerSku> skus = {
        carbon::StandardSkus::baseline(),
        carbon::StandardSkus::baselineResized(),
        carbon::StandardSkus::greenEfficient(),
        carbon::StandardSkus::greenCxl(),
        carbon::StandardSkus::greenFull(),
    };
    const carbon::CarbonModel carbon;
    const gsf::TcoModel tco;
    for (const carbon::ServerSku &sku : skus) {
        carbon.perCore(sku, ci);
        tco.perCore(sku);
    }

    cluster::TraceGenParams params;
    params.target_concurrent_vms = 120.0;
    params.duration_h = 24.0 * 7.0;
    const cluster::VmTrace trace =
        cluster::TraceGenerator(params).generate(3);
    const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};
    evaluator.evaluateCluster(trace, carbon::StandardSkus::baseline(),
                              carbon::StandardSkus::greenFull(), ci);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gsku;

    // The shared observability switches, minus --ledger: here that
    // flag *reads* a recorded ledger (and --record writes one).
    examples::ObsOptions obs_opts = examples::parseObsOptions(
        argc, argv, "gsku_explain", /*with_ledger=*/false);
    if (!obs_opts.error.empty()) {
        std::cerr << obs_opts.error << '\n';
        return 1;
    }
    examples::applyObsOptions(obs_opts);

    std::string ledger_path;
    std::string record_path;
    std::string why_sku;
    std::string compare_a;
    std::string compare_b;
    std::string diff_a;
    std::string diff_b;
    double ci_value = 0.1;

    const std::vector<std::string> &args = obs_opts.remaining;
    auto need = [&](std::size_t i, const char *opt, std::size_t count) {
        if (i + count >= args.size()) {
            std::cerr << "gsku_explain: " << opt << " needs " << count
                      << (count == 1 ? " argument\n" : " arguments\n");
            std::exit(1);
        }
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--ledger") {
            need(i, "--ledger", 1);
            ledger_path = args[++i];
        } else if (arg == "--record") {
            need(i, "--record", 1);
            record_path = args[++i];
        } else if (arg == "--ci") {
            need(i, "--ci", 1);
            ci_value = parseDouble(args[++i],
                                   ParseContext{"argv", 0, "--ci"});
        } else if (arg == "--why") {
            need(i, "--why", 1);
            why_sku = args[++i];
        } else if (arg == "--compare") {
            need(i, "--compare", 2);
            compare_a = args[++i];
            compare_b = args[++i];
        } else if (arg == "--diff") {
            need(i, "--diff", 2);
            diff_a = args[++i];
            diff_b = args[++i];
        } else {
            std::cerr << "gsku_explain: unknown argument " << arg << '\n';
            printUsage(std::cerr);
            return 1;
        }
    }
    // Observability epilogue: fold the artifact-write status into the
    // query's exit code (artifact failure only surfaces on success).
    auto finish = [&](int rc) {
        const int obs_rc =
            examples::finishObsOptions(obs_opts, "gsku_explain");
        return rc != 0 ? rc : obs_rc;
    };

    if (!diff_a.empty()) {
        const obs::LedgerFile a = obs::readLedgerFile(diff_a);
        const obs::LedgerFile b = obs::readLedgerFile(diff_b);
        const obs::DiffResult diff = obs::diffLedgers(a, b);
        if (!diff.ok) {
            std::cerr << "gsku_explain: " << diff.error << '\n';
            return 1;
        }
        std::cout << diff.text;
        return finish(diff.changes == 0 ? 0 : 1);
    }

    // Default query: explain the paper's headline design.
    if (why_sku.empty() && compare_a.empty()) {
        why_sku = "GreenSKU-Full";
    }

    obs::LedgerFile ledger;
    if (!ledger_path.empty()) {
        ledger = obs::readLedgerFile(ledger_path);
    } else {
        recordDemo(ci_value);
        if (!record_path.empty() && !obs::writeLedger(record_path)) {
            std::cerr << "gsku_explain: failed to write " << record_path
                      << '\n';
            return 1;
        }
        std::istringstream in(obs::renderLedger());
        ledger = obs::parseLedger(in);
    }

    if (!why_sku.empty()) {
        const obs::ExplainResult why = obs::explainWhy(ledger, why_sku);
        std::cout << why.text;
        if (!why.ok) {
            std::cerr << "gsku_explain: " << why.error << '\n';
            return 1;
        }
    }
    if (!compare_a.empty()) {
        const obs::ExplainResult cmp =
            obs::compareSkus(ledger, compare_a, compare_b);
        std::cout << cmp.text;
        if (!cmp.ok) {
            std::cerr << "gsku_explain: " << cmp.error << '\n';
            return 1;
        }
    }
    return finish(0);
}
