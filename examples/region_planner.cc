/**
 * @file
 * Region planner: pick the lowest-carbon GreenSKU per data-center region
 * (the Fig. 11 takeaway — "the best GreenSKU design depends on the data
 * center's operating conditions") and estimate the fleet-wide savings of
 * deploying each region's best design.
 *
 * Part two is a portfolio optimizer: instead of choosing among the three
 * catalog GreenSKUs, it runs the simulated-annealing design search
 * (gsf/search.h) once per region — each region's carbon model sees that
 * region's grid carbon intensity — and merges every region's Pareto
 * archive into one fleet-wide portfolio frontier. A design appears in
 * the portfolio when no other (design, region) pairing beats it on all
 * of carbon per core, TCO per core, and SLO margin at once; that is the
 * shortlist a fleet planner would actually stock.
 *
 * Usage: region_planner [--metrics] [--trace <path>] [--ledger <path>]
 */
#include <iostream>
#include <vector>

#include "carbon/datacenter.h"
#include "cluster/trace_gen.h"
#include "common/table.h"
#include "gsf/evaluator.h"
#include "gsf/pareto.h"
#include "gsf/search.h"
#include "obs_flags.h"

int
main(int argc, char **argv)
{
    using namespace gsku;
    using namespace gsku::gsf;

    examples::ObsOptions obs_opts =
        examples::parseObsOptions(argc, argv, "region_planner");
    if (!obs_opts.error.empty()) {
        std::cerr << obs_opts.error << '\n';
        return 1;
    }
    for (const std::string &arg : obs_opts.remaining) {
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: region_planner [options]\noptions:\n";
            examples::printObsFlagsHelp(std::cout);
            return 0;
        }
        std::cerr << "region_planner: unknown argument " << arg << '\n';
        return 1;
    }
    examples::applyObsOptions(obs_opts);

    struct Region
    {
        const char *name;
        double grid_ci;     ///< kgCO2e/kWh, public grid estimates.
        int clusters;       ///< Relative fleet weight.
    };
    const Region regions[] = {
        {"us-south", 0.05, 6}, {"us-central", 0.15, 8},
        {"us-west", 0.10, 5},  {"europe-north", 0.35, 4},
        {"asia-east", 0.45, 3},
    };

    cluster::TraceGenParams params;
    params.target_concurrent_vms = 250.0;
    params.duration_h = 24.0 * 14.0;
    const auto traces =
        cluster::TraceGenerator(params).generateFamily(4, 5);

    const GsfEvaluator evaluator{GsfEvaluator::Options{}};
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const std::vector<carbon::ServerSku> greens = {
        carbon::StandardSkus::greenEfficient(),
        carbon::StandardSkus::greenCxl(),
        carbon::StandardSkus::greenFull(),
    };

    std::cout << "Region planner: best GreenSKU per region\n\n";

    Table table({"Region", "CI (kg/kWh)", "Best SKU", "Cluster savings"},
                {Align::Left, Align::Right, Align::Left, Align::Right});
    double weighted = 0.0;
    int total_clusters = 0;
    for (const Region &region : regions) {
        double best = -1.0;
        std::string best_name;
        for (const auto &green : greens) {
            const auto sweep = evaluator.sweep(traces, baseline, green,
                                               {region.grid_ci});
            if (sweep.mean_savings[0] > best) {
                best = sweep.mean_savings[0];
                best_name = green.name;
            }
        }
        weighted += best * region.clusters;
        total_clusters += region.clusters;
        table.addRow({region.name, Table::num(region.grid_ci, 2),
                      best_name, Table::percent(best, 1)});
    }
    std::cout << table.render() << '\n';

    const double fleet_savings = weighted / total_clusters;
    const carbon::DataCenterModel dc;
    std::cout << "Fleet-weighted cluster savings with per-region SKU "
                 "choice: " << Table::percent(fleet_savings, 1) << '\n';
    std::cout << "Net data-center savings: "
              << Table::percent(
                     dc.dcSavings(carbon::FleetComposition{},
                                  fleet_savings),
                     1)
              << "\n\n";

    // ---- Part two: SA design search per region. --------------------
    // The catalog comparison above is limited to three fixed designs;
    // here each region gets a full design-space search at its own grid
    // CI, and the per-region Pareto archives merge into one fleet-wide
    // portfolio frontier.
    std::cout << "Portfolio optimizer: SA design search per region\n\n";

    Table sa_table({"Region", "CI (kg/kWh)", "SA-best design", "Savings",
                    "kgCO2e/core", "TCO $/core", "SLO margin"},
                   {Align::Left, Align::Right, Align::Left, Align::Right,
                    Align::Right, Align::Right, Align::Right});
    ParetoArchive portfolio;
    double sa_weighted = 0.0;
    for (const Region &region : regions) {
        carbon::ModelParams region_params;
        region_params.carbon_intensity =
            CarbonIntensity::kgPerKwh(region.grid_ci);
        const SkuSearch search(region_params);
        const SearchResult result = search.anneal(baseline);
        if (!result.found) {
            std::cerr << "region_planner: search found no feasible "
                         "design for " << region.name << '\n';
            return 1;
        }
        sa_weighted += result.best.savings.total_savings * region.clusters;
        sa_table.addRow(
            {region.name, Table::num(region.grid_ci, 2),
             result.best.sku.name,
             Table::percent(result.best.savings.total_savings, 1),
             Table::num(result.best_objectives.carbon_per_core_kg, 1),
             Table::num(result.best_objectives.tco_per_core_usd, 0),
             Table::percent(result.best_objectives.slo_margin, 1)});
        // Region-qualify the names before merging: the same design has
        // different objectives under different grid CIs, and archive
        // names must stay unique.
        for (const ParetoPoint &point : result.archive.points()) {
            ParetoPoint qualified = point;
            qualified.name = std::string(region.name) + ":" + point.name;
            portfolio.insert(qualified);
        }
    }
    std::cout << sa_table.render() << '\n';
    std::cout << "Fleet-weighted cluster savings with per-region SA "
                 "designs: "
              << Table::percent(sa_weighted / total_clusters, 1) << "\n\n";

    std::cout << "Fleet-wide Pareto portfolio ("
              << portfolio.size() << " non-dominated deployments)\n\n";
    Table portfolio_table({"Deployment", "kgCO2e/core", "TCO $/core",
                           "SLO margin", "Savings"},
                          {Align::Left, Align::Right, Align::Right,
                           Align::Right, Align::Right});
    for (const ParetoPoint &point : portfolio.points()) {
        portfolio_table.addRow(
            {point.name, Table::num(point.objectives.carbon_per_core_kg, 1),
             Table::num(point.objectives.tco_per_core_usd, 0),
             Table::percent(point.objectives.slo_margin, 1),
             Table::percent(point.savings.total_savings, 1)});
    }
    std::cout << portfolio_table.render() << '\n';

    return examples::finishObsOptions(obs_opts, "region_planner");
}
