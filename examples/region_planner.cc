/**
 * @file
 * Region planner: pick the lowest-carbon GreenSKU per data-center region
 * (the Fig. 11 takeaway — "the best GreenSKU design depends on the data
 * center's operating conditions") and estimate the fleet-wide savings of
 * deploying each region's best design.
 *
 * Usage: region_planner [--metrics] [--trace <path>] [--ledger <path>]
 */
#include <iostream>
#include <vector>

#include "carbon/datacenter.h"
#include "cluster/trace_gen.h"
#include "common/table.h"
#include "gsf/evaluator.h"
#include "obs_flags.h"

int
main(int argc, char **argv)
{
    using namespace gsku;
    using namespace gsku::gsf;

    examples::ObsOptions obs_opts =
        examples::parseObsOptions(argc, argv, "region_planner");
    if (!obs_opts.error.empty()) {
        std::cerr << obs_opts.error << '\n';
        return 1;
    }
    for (const std::string &arg : obs_opts.remaining) {
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: region_planner [options]\noptions:\n";
            examples::printObsFlagsHelp(std::cout);
            return 0;
        }
        std::cerr << "region_planner: unknown argument " << arg << '\n';
        return 1;
    }
    examples::applyObsOptions(obs_opts);

    struct Region
    {
        const char *name;
        double grid_ci;     ///< kgCO2e/kWh, public grid estimates.
        int clusters;       ///< Relative fleet weight.
    };
    const Region regions[] = {
        {"us-south", 0.05, 6}, {"us-central", 0.15, 8},
        {"us-west", 0.10, 5},  {"europe-north", 0.35, 4},
        {"asia-east", 0.45, 3},
    };

    cluster::TraceGenParams params;
    params.target_concurrent_vms = 250.0;
    params.duration_h = 24.0 * 14.0;
    const auto traces =
        cluster::TraceGenerator(params).generateFamily(4, 5);

    const GsfEvaluator evaluator{GsfEvaluator::Options{}};
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const std::vector<carbon::ServerSku> greens = {
        carbon::StandardSkus::greenEfficient(),
        carbon::StandardSkus::greenCxl(),
        carbon::StandardSkus::greenFull(),
    };

    std::cout << "Region planner: best GreenSKU per region\n\n";

    Table table({"Region", "CI (kg/kWh)", "Best SKU", "Cluster savings"},
                {Align::Left, Align::Right, Align::Left, Align::Right});
    double weighted = 0.0;
    int total_clusters = 0;
    for (const Region &region : regions) {
        double best = -1.0;
        std::string best_name;
        for (const auto &green : greens) {
            const auto sweep = evaluator.sweep(traces, baseline, green,
                                               {region.grid_ci});
            if (sweep.mean_savings[0] > best) {
                best = sweep.mean_savings[0];
                best_name = green.name;
            }
        }
        weighted += best * region.clusters;
        total_clusters += region.clusters;
        table.addRow({region.name, Table::num(region.grid_ci, 2),
                      best_name, Table::percent(best, 1)});
    }
    std::cout << table.render() << '\n';

    const double fleet_savings = weighted / total_clusters;
    const carbon::DataCenterModel dc;
    std::cout << "Fleet-weighted cluster savings with per-region SKU "
                 "choice: " << Table::percent(fleet_savings, 1) << '\n';
    std::cout << "Net data-center savings: "
              << Table::percent(
                     dc.dcSavings(carbon::FleetComposition{},
                                  fleet_savings),
                     1)
              << '\n';
    return examples::finishObsOptions(obs_opts, "region_planner");
}
