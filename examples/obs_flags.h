/**
 * @file
 * Shared observability flags for the example drivers — the
 * sku_eval_cli pattern, factored out so every example accepts the same
 * switches:
 *
 *   --metrics         print the metrics snapshot at exit
 *   --trace <path>    record a Chrome-trace of the run to <path>
 *   --ledger <path>   record the decision-provenance ledger to <path>
 *
 * Usage pattern:
 *
 *   ObsOptions obs_opts = parseObsOptions(argc, argv, "mytool");
 *   if (!obs_opts.error.empty()) { ... return 1; }
 *   applyObsOptions(obs_opts);          // start recorders
 *   // ... parse obs_opts.remaining, run ...
 *   return finishObsOptions(obs_opts, "mytool");  // 0 or 2
 *
 * The corresponding environment switches (GSKU_LEDGER, GSKU_TRACE-less
 * tools use --trace, GSKU_TSDB for telemetry) keep working regardless:
 * these flags only add explicit per-invocation control.
 */
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gsku::examples {

struct ObsOptions
{
    bool show_metrics = false;
    std::string trace_path;
    std::string ledger_path;
    std::string error;                      ///< Non-empty on bad usage.
    std::vector<std::string> remaining;     ///< Args we did not consume.
};

/** The help lines for the shared flags, for each tool's usage text. */
inline void
printObsFlagsHelp(std::ostream &out)
{
    out << "  --metrics        print the metrics snapshot at exit\n"
           "  --trace <path>   record a Chrome-trace of the run\n"
           "  --ledger <path>  record the decision ledger to <path>\n";
}

/**
 * Extract the shared observability flags from argv; everything else
 * lands in `remaining` in order (including --help, so each tool keeps
 * its own usage text). @p with_ledger lets gsku_explain keep its
 * pre-existing --ledger switch (which *reads* a ledger).
 */
inline ObsOptions
parseObsOptions(int argc, char **argv, const std::string &prog,
                bool with_ledger = true)
{
    ObsOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--metrics") {
            opts.show_metrics = true;
        } else if (arg == "--trace") {
            if (i + 1 >= argc) {
                opts.error = prog + ": --trace needs a path";
                return opts;
            }
            opts.trace_path = argv[++i];
        } else if (with_ledger && arg == "--ledger") {
            if (i + 1 >= argc) {
                opts.error = prog + ": --ledger needs a path";
                return opts;
            }
            opts.ledger_path = argv[++i];
        } else {
            opts.remaining.push_back(arg);
        }
    }
    return opts;
}

/** Start the recorders the flags asked for. Call once, before work. */
inline void
applyObsOptions(const ObsOptions &opts)
{
    if (!opts.trace_path.empty()) {
        obs::startTrace();
    }
    if (!opts.ledger_path.empty()) {
        obs::startLedger();
    }
}

/**
 * The exit epilogue: print the metrics snapshot and write the trace
 * and ledger artifacts. Returns 0, or 2 when an artifact write failed.
 */
inline int
finishObsOptions(const ObsOptions &opts, const std::string &prog)
{
    int rc = 0;
    if (opts.show_metrics) {
        std::cout << "\nMetrics snapshot:\n"
                  << obs::metrics().snapshot().toText();
    }
    if (!opts.trace_path.empty() && !obs::writeTrace(opts.trace_path)) {
        std::cerr << prog << ": failed to write " << opts.trace_path
                  << '\n';
        rc = 2;
    }
    if (!opts.ledger_path.empty() &&
        !obs::writeLedger(opts.ledger_path)) {
        std::cerr << prog << ": failed to write " << opts.ledger_path
                  << '\n';
        rc = 2;
    }
    return rc;
}

} // namespace gsku::examples
