/**
 * @file
 * Shared observability flags for the example drivers, so every
 * example CLI accepts the same switches:
 *
 *   --metrics         print the metrics snapshot at exit
 *   --trace <path>    record a Chrome-trace of the run to <path>
 *   --ledger <path>   record the decision-provenance ledger to <path>
 *   --tsdb <path>     stream live telemetry to a gsku-tsdb-v1 file
 *   --flight <path>   arm the flight recorder; dump to <path> at exit
 *   --profile <path>  write a deterministic gsku-profile-v1 work-unit
 *                     profile (plus <path>.collapsed) at exit
 *
 * Usage pattern:
 *
 *   ObsOptions obs_opts = parseObsOptions(argc, argv, "mytool");
 *   if (!obs_opts.error.empty()) { ... return 1; }
 *   applyObsOptions(obs_opts);          // start recorders
 *   // ... parse obs_opts.remaining, run ...
 *   return finishObsOptions(obs_opts, "mytool");  // 0 or 2
 *
 * The corresponding environment switches (GSKU_LEDGER, GSKU_TSDB,
 * GSKU_FLIGHT, GSKU_PROFILE) keep working regardless: these flags only
 * add explicit per-invocation control, giving the example CLIs
 * telemetry/flight-recorder/profiler parity with the bench drivers.
 */
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "obs/flightrec.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace gsku::examples {

struct ObsOptions
{
    bool show_metrics = false;
    std::string trace_path;
    std::string ledger_path;
    std::string tsdb_path;
    std::string flight_path;
    std::string profile_path;
    std::string prog;                       ///< For artifact headers.
    std::string error;                      ///< Non-empty on bad usage.
    std::vector<std::string> remaining;     ///< Args we did not consume.
};

/** The help lines for the shared flags, for each tool's usage text. */
inline void
printObsFlagsHelp(std::ostream &out)
{
    out << "  --metrics        print the metrics snapshot at exit\n"
           "  --trace <path>   record a Chrome-trace of the run\n"
           "  --ledger <path>  record the decision ledger to <path>\n"
           "  --tsdb <path>    stream live telemetry to <path>\n"
           "  --flight <path>  arm the flight recorder, dump at exit\n"
           "  --profile <path> write a deterministic work-unit "
           "profile\n";
}

/**
 * Extract the shared observability flags from argv; everything else
 * lands in `remaining` in order (including --help, so each tool keeps
 * its own usage text). @p with_ledger lets gsku_explain keep its
 * pre-existing --ledger switch (which *reads* a ledger).
 */
inline ObsOptions
parseObsOptions(int argc, char **argv, const std::string &prog,
                bool with_ledger = true)
{
    ObsOptions opts;
    opts.prog = prog;
    auto take_path = [&](int &i, const char *flag,
                         std::string *out) -> bool {
        if (i + 1 >= argc) {
            opts.error = prog + ": " + flag + " needs a path";
            return false;
        }
        *out = argv[++i];
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--metrics") {
            opts.show_metrics = true;
        } else if (arg == "--trace") {
            if (!take_path(i, "--trace", &opts.trace_path)) {
                return opts;
            }
        } else if (with_ledger && arg == "--ledger") {
            if (!take_path(i, "--ledger", &opts.ledger_path)) {
                return opts;
            }
        } else if (arg == "--tsdb") {
            if (!take_path(i, "--tsdb", &opts.tsdb_path)) {
                return opts;
            }
        } else if (arg == "--flight") {
            if (!take_path(i, "--flight", &opts.flight_path)) {
                return opts;
            }
        } else if (arg == "--profile") {
            if (!take_path(i, "--profile", &opts.profile_path)) {
                return opts;
            }
        } else {
            opts.remaining.push_back(arg);
        }
    }
    return opts;
}

/** Start the recorders the flags asked for. Call once, before work. */
inline void
applyObsOptions(const ObsOptions &opts)
{
    // Name the artifacts after the tool whether activation came from
    // a flag or from the environment (GSKU_FLIGHT / GSKU_PROFILE).
    obs::flightRecordProgram(opts.prog);
    obs::setProfileProgram(opts.prog);
    if (!opts.trace_path.empty()) {
        obs::startTrace();
    }
    if (!opts.ledger_path.empty()) {
        obs::startLedger();
    }
    if (!opts.tsdb_path.empty()) {
        obs::startTimeseries(opts.tsdb_path);
    }
    if (!opts.flight_path.empty()) {
        obs::startFlightRecorder(opts.flight_path);
    }
    if (!opts.profile_path.empty()) {
        obs::startProfile();
    }
}

/**
 * The exit epilogue: print the metrics snapshot and write the trace,
 * ledger, telemetry, flight-recorder, and profile artifacts. Returns
 * 0, or 2 when an artifact write failed.
 */
inline int
finishObsOptions(const ObsOptions &opts, const std::string &prog)
{
    int rc = 0;
    if (opts.show_metrics) {
        std::cout << "\nMetrics snapshot:\n"
                  << obs::metrics().snapshot().toText();
    }
    if (!opts.trace_path.empty() && !obs::writeTrace(opts.trace_path)) {
        std::cerr << prog << ": failed to write " << opts.trace_path
                  << '\n';
        rc = 2;
    }
    if (!opts.ledger_path.empty() &&
        !obs::writeLedger(opts.ledger_path)) {
        std::cerr << prog << ": failed to write " << opts.ledger_path
                  << '\n';
        rc = 2;
    }
    // Finalize telemetry (footer + checksums) whether it was started
    // by --tsdb or by GSKU_TSDB in the environment.
    obs::finishTimeseries();
    if (!opts.flight_path.empty()) {
        obs::dumpFlightRecorder((prog + "-exit").c_str());
    }
    if (!opts.profile_path.empty() &&
        !obs::writeProfile(opts.profile_path)) {
        std::cerr << prog << ": failed to write " << opts.profile_path
                  << '\n';
        rc = 2;
    }
    return rc;
}

} // namespace gsku::examples
