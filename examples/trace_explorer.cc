/**
 * @file
 * Trace explorer: generate a synthetic VM trace, summarize its workload
 * statistics (sizes, lifetimes, classes, memory-touch), replay it
 * against a right-sized mixed cluster, and dump a CSV of the per-trace
 * packing metrics — the raw material behind Figs. 9 and 10.
 *
 * Usage: trace_explorer [options] [seed] [target_concurrent_vms]
 * Options: [--metrics] [--trace <path>] [--ledger <path>]
 */
#include <cstdlib>
#include <iostream>
#include <map>

#include "cluster/trace_gen.h"
#include "cluster/trace_stats.h"
#include "common/csv.h"
#include "common/parse.h"
#include "common/table.h"
#include "gsf/adoption.h"
#include "gsf/sizing.h"
#include "obs_flags.h"
#include "perf/app.h"

int
main(int argc, char **argv)
{
    using namespace gsku;
    using namespace gsku::cluster;

    examples::ObsOptions obs_opts =
        examples::parseObsOptions(argc, argv, "trace_explorer");
    if (!obs_opts.error.empty()) {
        std::cerr << obs_opts.error << '\n';
        return 1;
    }
    std::vector<std::string> positional;
    for (const std::string &arg : obs_opts.remaining) {
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: trace_explorer [options] [seed] "
                         "[target_concurrent_vms]\noptions:\n";
            examples::printObsFlagsHelp(std::cout);
            return 0;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::cerr << "trace_explorer: unknown option " << arg << '\n';
            return 1;
        }
        positional.push_back(arg);
    }
    examples::applyObsOptions(obs_opts);

    const std::uint64_t seed =
        !positional.empty()
            ? parseU64(positional[0], ParseContext{"argv", 0, "seed"})
            : 7;
    const double target =
        positional.size() > 1
            ? parseDouble(positional[1],
                          ParseContext{"argv", 0, "target_vms"})
            : 250.0;

    TraceGenParams params;
    params.target_concurrent_vms = target;
    params.duration_h = 24.0 * 14.0;
    const VmTrace trace = TraceGenerator(params).generate(seed);

    // ---- Workload summary --------------------------------------------
    const TraceStats stats = summarizeTrace(trace);

    std::cout << "Trace " << trace.name << " (seed " << seed << "): "
              << stats.vm_count << " VMs over "
              << Table::num(trace.duration_h / 24.0, 0) << " days\n\n";
    Table summary({"Statistic", "Mean", "Min", "Max"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
    summary.addRow({"Cores per VM", Table::num(stats.cores.mean(), 1),
                    Table::num(stats.cores.min(), 0),
                    Table::num(stats.cores.max(), 0)});
    summary.addRow({"Memory per VM (GB)",
                    Table::num(stats.memory_gb.mean(), 1),
                    Table::num(stats.memory_gb.min(), 0),
                    Table::num(stats.memory_gb.max(), 0)});
    summary.addRow({"Lifetime (h)",
                    Table::num(stats.lifetime_h.mean(), 1),
                    Table::num(stats.lifetime_h.min(), 2),
                    Table::num(stats.lifetime_h.max(), 0)});
    summary.addRow({"Touched-memory fraction",
                    Table::num(stats.touch_fraction.mean(), 2),
                    Table::num(stats.touch_fraction.min(), 2),
                    Table::num(stats.touch_fraction.max(), 2)});
    std::cout << summary.render() << '\n';
    std::cout << "Full-node VMs: " << stats.full_node_vms
              << "; peak concurrent demand: "
              << stats.peak_concurrent_cores << " cores, "
              << Table::num(stats.peak_concurrent_memory_gb, 0)
              << " GB; mean population "
              << Table::num(stats.mean_population, 0) << " VMs\n\n";

    Table mix({"Application class", "VM share"},
              {Align::Left, Align::Right});
    for (const auto &[cls, share] : stats.class_shares) {
        mix.addRow({perf::toString(cls), Table::percent(share, 1)});
    }
    std::cout << mix.render();
    std::cout << "Class-mix deviation from Table III shares: "
              << Table::percent(stats.classMixDeviation(), 1) << "\n\n";

    // ---- Right-size and replay ----------------------------------------
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const perf::PerfModel perf_model;
    const carbon::CarbonModel carbon_model;
    const gsf::AdoptionModel adoption(perf_model, carbon_model);
    const gsf::ClusterSizer sizer;
    const auto table = adoption.buildTable(baseline, green,
                                           CarbonIntensity::kgPerKwh(0.1));
    const gsf::SizingResult sizing =
        sizer.size(trace, baseline, green, table);

    std::cout << "Right-sized clusters: all-baseline "
              << sizing.baseline_only_servers << " servers; mixed "
              << sizing.mixed_baselines << " + " << sizing.mixed_greens
              << " GreenSKU-Full\n";
    std::cout << "GreenSKU fallbacks to baseline: "
              << sizing.mixed_replay.green_fallbacks << "\n\n";

    // ---- CSV dump ------------------------------------------------------
    std::cout << "CSV of packing metrics:\n";
    CsvWriter csv(std::cout);
    csv.writeHeader({"group", "servers", "vms", "core_packing",
                     "mem_packing", "max_mem_utilization"});
    auto dump = [&](const char *group, const GroupMetrics &m) {
        csv.writeRow(std::vector<std::string>{
            group, std::to_string(m.servers),
            std::to_string(m.vms_placed),
            Table::num(m.mean_core_packing, 4),
            Table::num(m.mean_mem_packing, 4),
            Table::num(m.mean_max_mem_utilization, 4)});
    };
    dump("baseline_only", sizing.baseline_only_replay.baseline);
    dump("mixed_baseline", sizing.mixed_replay.baseline);
    dump("mixed_green", sizing.mixed_replay.green);
    return examples::finishObsOptions(obs_opts, "trace_explorer");
}
