/**
 * @file
 * Quickstart: evaluate a custom GreenSKU design end-to-end with GSF.
 *
 * Walks the full pipeline on a user-defined SKU:
 *   1. compose a server SKU from catalog components,
 *   2. ask the carbon model for its per-core emissions and rack fit,
 *   3. ask the performance model which applications can adopt it,
 *   4. size a cluster for a synthetic workload and report the savings.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Observability: [--metrics] [--trace <path>] [--ledger <path>]
 */
#include <iostream>

#include "carbon/catalog.h"
#include "carbon/model.h"
#include "carbon/sku.h"
#include "cluster/trace_gen.h"
#include "common/table.h"
#include "gsf/evaluator.h"
#include "obs_flags.h"
#include "perf/cpu.h"
#include "perf/model.h"

int
main(int argc, char **argv)
{
    using namespace gsku;
    using namespace gsku::carbon;

    examples::ObsOptions obs_opts =
        examples::parseObsOptions(argc, argv, "quickstart");
    if (!obs_opts.error.empty()) {
        std::cerr << obs_opts.error << '\n';
        return 1;
    }
    for (const std::string &arg : obs_opts.remaining) {
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: quickstart [options]\noptions:\n";
            examples::printObsFlagsHelp(std::cout);
            return 0;
        }
        std::cerr << "quickstart: unknown argument " << arg << '\n';
        return 1;
    }
    examples::applyObsOptions(obs_opts);

    // ---- 1. Compose a custom GreenSKU -------------------------------
    // A Bergamo server with a 50/50 split of new DDR5 and reused DDR4
    // (more aggressive than the paper's GreenSKU-CXL) and reused SSDs.
    ServerSku my_sku;
    my_sku.name = "MyGreenSKU";
    my_sku.generation = Generation::GreenSku;
    my_sku.cores = 128;
    my_sku.local_memory = MemCapacity::gb(8 * 64.0);
    my_sku.cxl_memory = MemCapacity::gb(16 * 32.0);
    my_sku.storage = StorageCapacity::tb(2 * 4.0 + 12 * 1.0);
    my_sku.slots = {
        {Catalog::bergamoCpu(), 1},
        {Catalog::ddr5Dimm(64.0), 8},
        {Catalog::reusedDdr4Dimm(32.0), 16},
        {Catalog::cxlController(), 4},      // 4 DIMMs per controller.
        {Catalog::newSsd(4.0), 2},
        {Catalog::reusedSsd(1.0), 12},
        {Catalog::serverMisc(), 1},
    };
    my_sku.validate();

    const ServerSku baseline = StandardSkus::baseline();

    // ---- 2. Carbon: per-core emissions and rack fit ------------------
    const CarbonModel carbon;
    const RackFootprint rack = carbon.rackFootprint(my_sku);
    const SavingsRow savings = carbon.savingsVs(baseline, my_sku);

    std::cout << "== Carbon ==\n";
    std::cout << my_sku.name << ": P_s = "
              << Table::num(rack.server_power.asWatts(), 0)
              << " W, embodied = "
              << Table::num(carbon.serverEmbodied(my_sku).asKg(), 0)
              << " kgCO2e, " << rack.servers_per_rack
              << " servers/rack ("
              << (rack.space_constrained ? "space" : "power")
              << "-constrained)\n";
    std::cout << "Per-core savings vs baseline: op "
              << Table::percent(savings.operational_savings, 1) << ", emb "
              << Table::percent(savings.embodied_savings, 1) << ", total "
              << Table::percent(savings.total_savings, 1) << "\n\n";

    // ---- 3. Performance: who can adopt it? ---------------------------
    const perf::PerfModel perf;
    const gsf::AdoptionModel adoption(perf, carbon);
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(0.1);

    std::cout << "== Adoption (vs Gen3-origin VMs, CI = 0.1) ==\n";
    Table table({"Application", "Scaling factor", "Adopts"},
                {Align::Left, Align::Right, Align::Left});
    for (const auto &app : perf::AppCatalog::all()) {
        const auto sf =
            perf.scalingFactor(app, perf::CpuCatalog::genoa());
        const auto d = adoption.decide(app, Generation::Gen3, baseline,
                                       my_sku, ci);
        table.addRow({app.name, sf.display(), d.adopt ? "yes" : "no"});
    }
    std::cout << table.render() << '\n';

    // ---- 4. Cluster: size it against a workload ----------------------
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 250.0;
    params.duration_h = 24.0 * 14.0;
    const cluster::VmTrace trace =
        cluster::TraceGenerator(params).generate(1);

    const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};
    const auto eval =
        evaluator.evaluateCluster(trace, baseline, my_sku, ci);

    std::cout << "== Cluster ==\n";
    std::cout << "Workload: " << trace.vms.size() << " VM deployments over "
              << Table::num(trace.duration_h / 24.0, 0) << " days\n";
    std::cout << "All-baseline cluster: "
              << eval.sizing.baseline_only_servers << " servers (+"
              << eval.baseline_scenario_buffer << " buffer)\n";
    std::cout << "Mixed cluster: " << eval.sizing.mixed_baselines
              << " baselines + " << eval.sizing.mixed_greens << " "
              << my_sku.name << " (+" << eval.mixed_scenario_buffer
              << " buffer)\n";
    std::cout << "Cluster-level carbon savings: "
              << Table::percent(eval.savings, 1) << '\n';
    return examples::finishObsOptions(obs_opts, "quickstart");
}
